//! The unified [`Transport`] API: one worker-side interface over the
//! SpecSync protocol, with two implementations.
//!
//! - [`InProcTransport`] carries frames over in-process channels — the
//!   default, byte-identical to the pre-wire runtime's direct calls;
//! - [`TcpTransport`] carries the same frames over real sockets, so
//!   workers run as separate OS processes and ride out a shard death via
//!   the scheduler's where-is-the-primary exchange.
//!
//! A worker names the plane it is talking to with [`Endpoint`]: the shard
//! serves the data plane (`Pull`/`Push`), the scheduler the control plane
//! (pull notices, `Notify`, `Heartbeat`, failover queries). Asynchronous
//! instructions *from* the scheduler (`Abort`, `Shutdown`) arrive through
//! [`Transport::poll_control`], mirroring the simulator's re-sync
//! delivery.
//!
//! Both implementations match every [`WireMessage`] variant explicitly —
//! the `cargo xtask analyze` exhaustiveness pass holds them to it — so a
//! new protocol frame cannot be silently dropped by one transport and
//! handled by the other.

use std::io::Write as _;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, Sender, TryRecvError};
use specsync_simnet::WorkerId;
use specsync_telemetry::{Event, EventSink};

use crate::config::NetConfig;
use crate::error::NetError;
use crate::frame::{read_frame, write_frame, ReadOutcome};
use crate::wire::{FailoverControl, WireMessage};

/// Which peer a [`Transport::send`] addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// The parameter-server shard (data plane: snapshots and gradients).
    Shard,
    /// The scheduler (control plane: notices, notifies, heartbeats,
    /// failover queries).
    Scheduler,
}

/// A worker's connection to the SpecSync protocol, independent of whether
/// the peers live in this process or across sockets.
pub trait Transport: Send {
    /// Sends one frame to `to`, returning the peer's reply when the verb
    /// has one (`Pull` → `PullReply`, `Push` → `PushAck` on request/
    /// response transports, `QueryPrimary` → `Primary`).
    ///
    /// # Errors
    ///
    /// [`NetError::Unhandled`] for frames a worker never sends (replies,
    /// scheduler-internal verbs); [`NetError::Disconnected`] /
    /// [`NetError::Io`] when the peer is gone and reconnection failed.
    fn send(&mut self, to: Endpoint, msg: WireMessage) -> Result<Option<WireMessage>, NetError>;

    /// Non-blocking poll for an asynchronous instruction from the
    /// scheduler (`Abort`, `Shutdown`). `None` when nothing is pending.
    fn poll_control(&mut self) -> Option<WireMessage>;
}

/// A frame paired with an optional rendezvous channel for the reply —
/// what [`InProcTransport`] puts on the server channel, so request/
/// response verbs work over plain mpsc.
pub type ServerFrame = (WireMessage, Option<Sender<WireMessage>>);

/// The in-process transport: frames over crossbeam channels, one hop,
/// no serialization. The default deployment — its behavior (channel per
/// role, rendezvous reply for pulls, fire-and-forget pushes) is exactly
/// the seed runtime's, so existing golden traces stay byte-identical.
#[derive(Debug)]
pub struct InProcTransport {
    worker: WorkerId,
    server_tx: Sender<ServerFrame>,
    sched_tx: Sender<WireMessage>,
    control_rx: Receiver<WireMessage>,
}

impl InProcTransport {
    /// Wires a worker to in-process server and scheduler loops. The
    /// caller owns the receiving ends; `control_rx` delivers the
    /// scheduler's `Abort` instructions (a bounded(1) channel reproduces
    /// the seed's at-most-one-pending re-sync semantics).
    pub fn new(
        worker: WorkerId,
        server_tx: Sender<ServerFrame>,
        sched_tx: Sender<WireMessage>,
        control_rx: Receiver<WireMessage>,
    ) -> Self {
        InProcTransport {
            worker,
            server_tx,
            sched_tx,
            control_rx,
        }
    }

    /// The worker this transport belongs to.
    pub fn worker(&self) -> WorkerId {
        self.worker
    }
}

impl Transport for InProcTransport {
    fn send(&mut self, to: Endpoint, msg: WireMessage) -> Result<Option<WireMessage>, NetError> {
        match (&msg, to) {
            // Data plane, request/response: rendezvous on a bounded(1)
            // channel, exactly the seed's pull shape.
            (WireMessage::Pull { .. }, Endpoint::Shard) => {
                let (reply_tx, reply_rx) = bounded(1);
                self.server_tx
                    .send((msg, Some(reply_tx)))
                    .map_err(|_| NetError::Disconnected)?;
                let reply = reply_rx.recv().map_err(|_| NetError::Disconnected)?;
                Ok(Some(reply))
            }
            // Data plane, fire-and-forget: the seed runtime never acked
            // pushes in-process, and keeping that shape keeps its timing.
            (WireMessage::Push { .. }, Endpoint::Shard) => {
                self.server_tx
                    .send((msg, None))
                    .map_err(|_| NetError::Disconnected)?;
                Ok(None)
            }
            (WireMessage::Shutdown, Endpoint::Shard) => {
                self.server_tx
                    .send((msg, None))
                    .map_err(|_| NetError::Disconnected)?;
                Ok(None)
            }
            // Control plane: notices and beats, no replies.
            (
                WireMessage::Pull { .. }
                | WireMessage::Notify { .. }
                | WireMessage::Heartbeat { .. }
                | WireMessage::Shutdown,
                Endpoint::Scheduler,
            ) => {
                self.sched_tx
                    .send(msg)
                    .map_err(|_| NetError::Disconnected)?;
                Ok(None)
            }
            // In-process there is no remote primary to rediscover.
            (WireMessage::Failover(_), _) => Err(NetError::Unhandled {
                what: "failover control has no in-process recipient",
            }),
            // Frames a worker receives but never sends.
            (WireMessage::PullReply { .. } | WireMessage::PushAck { .. }, _) => {
                Err(NetError::Unhandled {
                    what: "reply frame sent from a worker transport",
                })
            }
            (WireMessage::Abort { .. } | WireMessage::Check { .. }, _) => {
                Err(NetError::Unhandled {
                    what: "scheduler-originated frame sent from a worker transport",
                })
            }
            // Remaining cross-plane pairings (e.g. Push to the scheduler).
            (WireMessage::Push { .. } | WireMessage::Notify { .. }, _)
            | (WireMessage::Heartbeat { .. }, Endpoint::Shard) => Err(NetError::Unhandled {
                what: "frame addressed to the wrong endpoint",
            }),
        }
    }

    fn poll_control(&mut self) -> Option<WireMessage> {
        self.control_rx.try_recv().ok()
    }
}

/// Elapsed-time origin for wall-clock trace timestamps: wraps the one
/// `Instant` a TCP process reads, so every frame event is stamped with
/// the [`Duration`] since transport creation (the same timestamp type the
/// threaded runtime traces use).
#[derive(Debug, Clone, Copy)]
pub struct WallElapsed {
    origin: Instant,
}

impl WallElapsed {
    /// Starts the clock now.
    pub fn start() -> Self {
        WallElapsed {
            origin: Instant::now(),
        }
    }

    /// Elapsed time since the origin.
    pub fn elapsed(&self) -> Duration {
        self.origin.elapsed()
    }
}

/// One request/response socket with framed reads and writes.
#[derive(Debug)]
pub struct FrameConn {
    stream: TcpStream,
    /// Peer address, kept for error reporting and reconnect targeting.
    addr: String,
}

impl FrameConn {
    /// Connects with bounded retries and exponential backoff. `retry`
    /// observes each failed attempt (1-based) before the backoff sleep.
    pub fn connect_with_retries(
        addr: &str,
        config: &NetConfig,
        mut retry: impl FnMut(u32),
    ) -> Result<Self, NetError> {
        let mut attempt = 0u32;
        loop {
            match TcpStream::connect(addr) {
                Ok(stream) => {
                    stream.set_nodelay(true).ok();
                    stream.set_read_timeout(Some(config.io_timeout)).ok();
                    return Ok(FrameConn {
                        stream,
                        addr: addr.to_string(),
                    });
                }
                Err(_) if attempt + 1 < config.connect_retries => {
                    retry(attempt + 1);
                    std::thread::sleep(config.backoff_delay(attempt));
                    attempt += 1;
                }
                Err(_) => {
                    return Err(NetError::ConnectFailed {
                        addr: addr.to_string(),
                        attempts: attempt + 1,
                    })
                }
            }
        }
    }

    /// Wraps an accepted stream (server side).
    pub fn from_stream(stream: TcpStream, addr: String) -> Self {
        FrameConn { stream, addr }
    }

    /// The peer address this connection targets.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Unwraps the underlying stream (for split reader/writer setups).
    pub fn into_stream(self) -> TcpStream {
        self.stream
    }

    /// Writes one frame, returning its encoded size.
    pub fn write(&mut self, msg: &WireMessage) -> Result<usize, NetError> {
        Ok(write_frame(&mut self.stream, msg)?)
    }

    /// Writes pre-encoded frame bytes (the shard's per-version cached
    /// `PullReply`), skipping re-serialization.
    pub fn write_encoded(&mut self, bytes: &[u8]) -> Result<usize, NetError> {
        self.stream.write_all(bytes)?;
        Ok(bytes.len())
    }

    /// Receives one frame, returning it with its wire size.
    ///
    /// # Errors
    ///
    /// [`NetError::Disconnected`] on clean EOF between frames.
    pub fn recv(&mut self) -> Result<(WireMessage, usize), NetError> {
        match read_frame(&mut self.stream)? {
            ReadOutcome::Frame(msg, bytes) => Ok((msg, bytes)),
            ReadOutcome::Closed => Err(NetError::Disconnected),
        }
    }

    /// One request/response round trip.
    pub fn exchange(&mut self, msg: &WireMessage) -> Result<(WireMessage, usize, usize), NetError> {
        let sent = self.write(msg)?;
        let (reply, received) = self.recv()?;
        Ok((reply, sent, received))
    }
}

/// The worker's scheduler link: a persistent connection whose reader
/// thread demultiplexes asynchronous scheduler pushes (`Abort`,
/// `Shutdown`) from request replies (`Primary`).
#[derive(Debug)]
struct SchedLink {
    writer: TcpStream,
    control_rx: Receiver<WireMessage>,
    reply_rx: Receiver<FailoverControl>,
}

impl SchedLink {
    fn connect(
        addr: &str,
        config: &NetConfig,
        mut retry: impl FnMut(u32),
    ) -> Result<Self, NetError> {
        let conn = FrameConn::connect_with_retries(addr, config, &mut retry)?;
        let writer = conn.stream.try_clone()?;
        let mut reader = conn.stream;
        // The reader blocks between scheduler pushes; no per-read timeout.
        reader.set_read_timeout(None).ok();
        let (control_tx, control_rx) = bounded::<WireMessage>(16);
        let (reply_tx, reply_rx) = bounded::<FailoverControl>(1);
        std::thread::spawn(move || loop {
            match read_frame(&mut reader) {
                Ok(ReadOutcome::Frame(
                    WireMessage::Failover(fc @ FailoverControl::Primary { .. }),
                    _,
                )) => {
                    let _ = reply_tx.send(fc);
                }
                Ok(ReadOutcome::Frame(
                    msg @ (WireMessage::Abort { .. } | WireMessage::Shutdown),
                    _,
                )) => {
                    if control_tx.send(msg).is_err() {
                        break;
                    }
                }
                // Any other frame on this link is protocol noise; keep
                // reading so one stray frame cannot wedge the worker.
                Ok(ReadOutcome::Frame(_, _)) => {}
                Ok(ReadOutcome::Closed) | Err(_) => break,
            }
        });
        Ok(SchedLink {
            writer,
            control_rx,
            reply_rx,
        })
    }

    fn send(&mut self, msg: &WireMessage) -> Result<usize, NetError> {
        Ok(write_frame(&mut self.writer, msg)?)
    }

    /// Asks the scheduler where the primary shard lives.
    fn query_primary(&mut self, io_timeout: Duration) -> Result<FailoverControl, NetError> {
        // Drain a stale answer from a previous query before asking again.
        while self.reply_rx.try_recv().is_ok() {}
        self.send(&WireMessage::Failover(FailoverControl::QueryPrimary))?;
        self.reply_rx
            .recv_timeout(io_timeout)
            .map_err(|_| NetError::Disconnected)
    }
}

/// The TCP transport: the same protocol over real sockets. Holds one
/// request/response connection to the serving shard and one persistent
/// demultiplexed link to the scheduler; a shard-connection failure
/// triggers the `QueryPrimary` → reconnect dance with [`Event::ConnRetry`]
/// breadcrumbs, which is how a worker rides out a `kill -9`'d primary.
pub struct TcpTransport {
    worker: WorkerId,
    shard: FrameConn,
    sched: SchedLink,
    config: NetConfig,
    sink: Arc<dyn EventSink<Duration>>,
    clock: WallElapsed,
    /// Promotion epoch of the primary we are connected to; a `Primary`
    /// answer with a lower epoch is stale and retried.
    epoch: u64,
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("worker", &self.worker)
            .field("shard_addr", &self.shard.addr())
            .field("epoch", &self.epoch)
            .finish_non_exhaustive()
    }
}

impl TcpTransport {
    /// Connects a worker to a shard and a scheduler, emitting
    /// [`Event::ConnRetry`] for every failed attempt.
    pub fn connect(
        worker: WorkerId,
        shard_addr: &str,
        sched_addr: &str,
        config: NetConfig,
        sink: Arc<dyn EventSink<Duration>>,
    ) -> Result<Self, NetError> {
        let clock = WallElapsed::start();
        let retry = |sink: &Arc<dyn EventSink<Duration>>, clock: &WallElapsed, attempt: u32| {
            sink.record(clock.elapsed(), &Event::ConnRetry { worker, attempt });
        };
        let sched = SchedLink::connect(sched_addr, &config, |a| retry(&sink, &clock, a))?;
        let shard =
            FrameConn::connect_with_retries(shard_addr, &config, |a| retry(&sink, &clock, a))?;
        Ok(TcpTransport {
            worker,
            shard,
            sched,
            config,
            sink,
            clock,
            epoch: 0,
        })
    }

    /// The worker this transport belongs to.
    pub fn worker(&self) -> WorkerId {
        self.worker
    }

    fn note_sent(&self, msg_class: specsync_simnet::MessageClass, bytes: usize) {
        self.sink.record(
            self.clock.elapsed(),
            &Event::FrameSent {
                worker: self.worker,
                class: msg_class,
                bytes: bytes as u64,
            },
        );
    }

    fn note_received(&self, msg_class: specsync_simnet::MessageClass, bytes: usize) {
        self.sink.record(
            self.clock.elapsed(),
            &Event::FrameReceived {
                worker: self.worker,
                class: msg_class,
                bytes: bytes as u64,
            },
        );
    }

    /// Re-resolves the primary through the scheduler and reconnects,
    /// with `ConnRetry` telemetry per attempt. Loops until the scheduler
    /// names a primary with a fresh promotion epoch the transport can
    /// actually reach, or the per-connect retry budget runs dry.
    fn reconnect_to_primary(&mut self) -> Result<(), NetError> {
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            self.sink.record(
                self.clock.elapsed(),
                &Event::ConnRetry {
                    worker: self.worker,
                    attempt,
                },
            );
            if attempt > 1 {
                std::thread::sleep(self.config.backoff_delay(attempt - 2));
            }
            if attempt > self.config.connect_retries {
                return Err(NetError::ConnectFailed {
                    addr: self.shard.addr().to_string(),
                    attempts: attempt,
                });
            }
            let Ok(FailoverControl::Primary { addr, epoch }) =
                self.sched.query_primary(self.config.io_timeout)
            else {
                continue;
            };
            // Promotion epochs only move forward, so an answer below the
            // epoch we already hold is a delayed frame from before a later
            // failover — following it would reconnect to a demoted shard.
            // An answer at our epoch naming the address we just lost means
            // the scheduler has not noticed the death yet. Back off and
            // ask again in both cases.
            if epoch < self.epoch || (epoch == self.epoch && addr == self.shard.addr()) {
                continue;
            }
            let worker = self.worker;
            let sink = Arc::clone(&self.sink);
            let clock = self.clock;
            match FrameConn::connect_with_retries(&addr, &self.config, |a| {
                sink.record(clock.elapsed(), &Event::ConnRetry { worker, attempt: a });
            }) {
                Ok(conn) => {
                    self.shard = conn;
                    self.epoch = epoch;
                    return Ok(());
                }
                Err(_) => continue,
            }
        }
    }

    /// One shard round trip with failover: an I/O failure (the primary
    /// died mid-exchange) triggers primary re-resolution and a retry of
    /// the same frame on the new connection.
    fn shard_exchange(&mut self, msg: &WireMessage) -> Result<WireMessage, NetError> {
        let class = msg.class();
        loop {
            match self.shard.exchange(msg) {
                Ok((reply, sent, received)) => {
                    self.note_sent(class, sent);
                    self.note_received(reply.class(), received);
                    return Ok(reply);
                }
                Err(NetError::Io(_) | NetError::Disconnected) => {
                    self.reconnect_to_primary()?;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, to: Endpoint, msg: WireMessage) -> Result<Option<WireMessage>, NetError> {
        match (&msg, to) {
            // Data plane: both verbs are request/response over TCP — the
            // ack doubles as flow control, so a worker cannot flood a
            // shard faster than it applies.
            (WireMessage::Pull { .. } | WireMessage::Push { .. }, Endpoint::Shard) => {
                let reply = self.shard_exchange(&msg)?;
                match reply {
                    WireMessage::PullReply { .. } | WireMessage::PushAck { .. } => Ok(Some(reply)),
                    WireMessage::Pull { .. }
                    | WireMessage::Push { .. }
                    | WireMessage::Notify { .. }
                    | WireMessage::Check { .. }
                    | WireMessage::Abort { .. }
                    | WireMessage::Heartbeat { .. }
                    | WireMessage::Shutdown
                    | WireMessage::Failover(_) => Err(NetError::UnexpectedReply {
                        want: "PullReply or PushAck",
                    }),
                }
            }
            (WireMessage::Shutdown, Endpoint::Shard) => {
                let bytes = self.shard.write(&msg)?;
                self.note_sent(msg.class(), bytes);
                Ok(None)
            }
            // Control plane: one-way frames on the persistent link.
            (
                WireMessage::Pull { .. }
                | WireMessage::Notify { .. }
                | WireMessage::Heartbeat { .. }
                | WireMessage::Shutdown,
                Endpoint::Scheduler,
            ) => {
                let class = msg.class();
                let bytes = self.sched.send(&msg)?;
                self.note_sent(class, bytes);
                Ok(None)
            }
            (WireMessage::Failover(FailoverControl::QueryPrimary), Endpoint::Scheduler) => {
                let answer = self.sched.query_primary(self.config.io_timeout)?;
                Ok(Some(WireMessage::Failover(answer)))
            }
            (WireMessage::Failover(_), _) => Err(NetError::Unhandled {
                what: "workers only send QueryPrimary on the failover plane",
            }),
            (WireMessage::PullReply { .. } | WireMessage::PushAck { .. }, _) => {
                Err(NetError::Unhandled {
                    what: "reply frame sent from a worker transport",
                })
            }
            (WireMessage::Abort { .. } | WireMessage::Check { .. }, _) => {
                Err(NetError::Unhandled {
                    what: "scheduler-originated frame sent from a worker transport",
                })
            }
            (WireMessage::Push { .. } | WireMessage::Notify { .. }, _)
            | (WireMessage::Heartbeat { .. }, Endpoint::Shard) => Err(NetError::Unhandled {
                what: "frame addressed to the wrong endpoint",
            }),
        }
    }

    fn poll_control(&mut self) -> Option<WireMessage> {
        match self.sched.control_rx.try_recv() {
            Ok(msg) => {
                self.note_received(msg.class(), 0);
                Some(msg)
            }
            Err(TryRecvError::Empty | TryRecvError::Disconnected) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::encode_frame;
    use crossbeam::channel::unbounded;

    #[test]
    fn in_proc_pull_round_trips() {
        let (server_tx, server_rx) = unbounded::<ServerFrame>();
        let (sched_tx, sched_rx) = unbounded::<WireMessage>();
        let (_control_tx, control_rx) = bounded(1);
        let w = WorkerId::new(0);
        let mut t = InProcTransport::new(w, server_tx, sched_tx, control_rx);

        let server = std::thread::spawn(move || {
            let (msg, reply) = server_rx.recv().unwrap();
            assert!(matches!(msg, WireMessage::Pull { .. }));
            reply
                .unwrap()
                .send(WireMessage::PullReply {
                    version: 7,
                    params: Arc::from(vec![1.0f32; 4].as_slice()),
                })
                .unwrap();
        });
        let reply = t
            .send(Endpoint::Shard, WireMessage::Pull { worker: w })
            .unwrap();
        assert!(matches!(
            reply,
            Some(WireMessage::PullReply { version: 7, .. })
        ));
        server.join().unwrap();

        t.send(
            Endpoint::Scheduler,
            WireMessage::Notify {
                worker: w,
                pushes: 3,
            },
        )
        .unwrap();
        assert!(matches!(
            sched_rx.recv().unwrap(),
            WireMessage::Notify { pushes: 3, .. }
        ));
    }

    #[test]
    fn in_proc_control_polls_aborts() {
        let (server_tx, _server_rx) = unbounded::<ServerFrame>();
        let (sched_tx, _sched_rx) = unbounded::<WireMessage>();
        let (control_tx, control_rx) = bounded(1);
        let w = WorkerId::new(2);
        let mut t = InProcTransport::new(w, server_tx, sched_tx, control_rx);
        assert!(t.poll_control().is_none());
        control_tx.send(WireMessage::Abort { worker: w }).unwrap();
        assert_eq!(t.poll_control(), Some(WireMessage::Abort { worker: w }));
        assert!(t.poll_control().is_none());
    }

    #[test]
    fn in_proc_refuses_frames_workers_never_send() {
        let (server_tx, _server_rx) = unbounded::<ServerFrame>();
        let (sched_tx, _sched_rx) = unbounded::<WireMessage>();
        let (_control_tx, control_rx) = bounded(1);
        let w = WorkerId::new(0);
        let mut t = InProcTransport::new(w, server_tx, sched_tx, control_rx);
        for (frame, ep) in [
            (
                WireMessage::PushAck {
                    version: 0,
                    pushes_by_worker: 0,
                },
                Endpoint::Shard,
            ),
            (WireMessage::Abort { worker: w }, Endpoint::Scheduler),
            (WireMessage::Check { worker: w }, Endpoint::Scheduler),
            (
                WireMessage::Failover(FailoverControl::QueryPrimary),
                Endpoint::Scheduler,
            ),
            (
                WireMessage::Push {
                    worker: w,
                    payload: specsync_ps::PushPayload::Dense(vec![0.0]),
                },
                Endpoint::Scheduler,
            ),
            (WireMessage::Heartbeat { worker: w }, Endpoint::Shard),
        ] {
            let err = t.send(ep, frame).unwrap_err();
            assert!(matches!(err, NetError::Unhandled { .. }));
        }
    }

    #[test]
    fn disconnected_server_surfaces() {
        let (server_tx, server_rx) = unbounded::<ServerFrame>();
        let (sched_tx, _sched_rx) = unbounded::<WireMessage>();
        let (_control_tx, control_rx) = bounded(1);
        drop(server_rx);
        let w = WorkerId::new(0);
        let mut t = InProcTransport::new(w, server_tx, sched_tx, control_rx);
        assert!(matches!(
            t.send(Endpoint::Shard, WireMessage::Pull { worker: w }),
            Err(NetError::Disconnected)
        ));
    }

    #[test]
    fn frame_conn_round_trips_over_loopback() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (stream, peer) = listener.accept().unwrap();
            let mut conn = FrameConn::from_stream(stream, peer.to_string());
            let (msg, _) = conn.recv().unwrap();
            assert!(matches!(msg, WireMessage::Heartbeat { .. }));
            conn.write(&WireMessage::PushAck {
                version: 9,
                pushes_by_worker: 2,
            })
            .unwrap();
        });
        let cfg = NetConfig::default();
        let mut conn = FrameConn::connect_with_retries(&addr, &cfg, |_| {}).unwrap();
        let (reply, sent, received) = conn
            .exchange(&WireMessage::Heartbeat {
                worker: WorkerId::new(1),
            })
            .unwrap();
        assert!(sent > 0 && received > 0);
        assert_eq!(
            reply,
            WireMessage::PushAck {
                version: 9,
                pushes_by_worker: 2
            }
        );
        server.join().unwrap();
    }

    #[test]
    fn write_encoded_matches_write() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let msg = WireMessage::PullReply {
            version: 3,
            params: Arc::from(vec![0.5f32; 16].as_slice()),
        };
        let expect = msg.clone();
        let server = std::thread::spawn(move || {
            let (stream, peer) = listener.accept().unwrap();
            let mut conn = FrameConn::from_stream(stream, peer.to_string());
            let bytes: Arc<[u8]> = Arc::from(encode_frame(&msg).unwrap());
            conn.write_encoded(&bytes).unwrap();
        });
        let cfg = NetConfig::default();
        let mut conn = FrameConn::connect_with_retries(&addr, &cfg, |_| {}).unwrap();
        let (got, _) = conn.recv().unwrap();
        assert_eq!(got, expect);
        server.join().unwrap();
    }

    #[test]
    fn connect_retries_exhaust_into_typed_error() {
        // A port nothing listens on: bind, note the port, drop the socket.
        let port = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let cfg = NetConfig::builder()
            .connect_retries(2)
            .retry_backoff(Duration::from_millis(1))
            .try_build()
            .unwrap();
        let mut attempts_seen = 0;
        let err = FrameConn::connect_with_retries(&format!("127.0.0.1:{port}"), &cfg, |_| {
            attempts_seen += 1;
        })
        .unwrap_err();
        assert!(matches!(err, NetError::ConnectFailed { attempts: 2, .. }));
        assert_eq!(attempts_seen, 1);
    }
}
