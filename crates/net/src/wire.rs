//! The consolidated wire vocabulary: every message the SpecSync protocol
//! puts between processes, plus the byte-size model used for transfer
//! accounting.
//!
//! One enum, [`WireMessage`], covers the whole protocol — the worker↔shard
//! data plane (`Pull`/`PullReply`/`Push`/`PushAck`), the worker↔scheduler
//! control plane (`Notify`/`Check`/`Abort`/`Heartbeat`) and the failover
//! control frames ([`FailoverControl`]). Every transport impl and every
//! host handler speaks exactly this vocabulary; the `cargo xtask analyze`
//! event-exhaustiveness pass enforces that no transport silently drops a
//! variant.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use specsync_ps::PushPayload;
use specsync_simnet::{MessageClass, WorkerId};

/// One SpecSync protocol message, as carried by any [`Transport`]
/// (in-process channels or TCP frames alike).
///
/// Replies embed shared `Arc` parameter blocks so a snapshot served to
/// hundreds of concurrent clients is stored once ([`ParamSnapshot`]
/// semantics carried onto the wire).
///
/// [`Transport`]: crate::Transport
/// [`ParamSnapshot`]: specsync_ps::ParamSnapshot
#[derive(Debug, Clone, PartialEq)]
pub enum WireMessage {
    /// Worker → shard: request the current parameter snapshot. Also sent
    /// worker → scheduler as the pull *notice* that feeds push-history
    /// freshness accounting (paper §IV-B).
    Pull {
        /// The requesting worker.
        worker: WorkerId,
    },
    /// Shard → worker: the snapshot. The parameter block is shared, not
    /// copied — the shard serializes each store version once and every
    /// concurrent client reply clones the `Arc`, not the floats.
    PullReply {
        /// Store version (total applied pushes) of the snapshot.
        version: u64,
        /// The full parameter vector.
        params: Arc<[f32]>,
    },
    /// Worker → shard: a gradient push (dense or sparse). The learning
    /// rate is the shard's business — it owns the schedule and the epoch
    /// counter, exactly like the in-process server thread.
    Push {
        /// The pushing worker.
        worker: WorkerId,
        /// The gradient.
        payload: PushPayload,
    },
    /// Shard → worker: push applied. `version` is the store version after
    /// the apply; `pushes_by_worker` the shard's cumulative applied-push
    /// count for this worker (the reconciliation counter a notify
    /// piggybacks).
    PushAck {
        /// Store version after this push.
        version: u64,
        /// Cumulative pushes the shard has applied for this worker.
        pushes_by_worker: u64,
    },
    /// Worker → scheduler: iteration complete. `pushes` is the worker's
    /// cumulative push count, letting the scheduler reconcile away lost
    /// notifies (paper §IV-C).
    Notify {
        /// The notifying worker.
        worker: WorkerId,
        /// Cumulative pushes by this worker.
        pushes: u64,
    },
    /// Scheduler-internal: evaluate the speculation window for `worker`
    /// now. Timer machinery routes deadline firings through the same
    /// frame handler as remote messages, so the decision path is one code
    /// path regardless of what woke it.
    Check {
        /// The worker whose window is due.
        worker: WorkerId,
    },
    /// Scheduler → worker: abort the speculative iteration and re-pull
    /// (the paper's `re-sync` instruction).
    Abort {
        /// The worker being re-synced.
        worker: WorkerId,
    },
    /// Liveness beat. Workers beat the scheduler; shard processes beat it
    /// too (identified by their registered connection, with the shard id
    /// in the `worker` field), so one silence detector covers both.
    Heartbeat {
        /// Sender id (worker index, or shard id on a shard connection).
        worker: WorkerId,
    },
    /// Failover control plane: crash/promote/recover plus the
    /// where-is-the-primary exchange workers use to ride out a shard
    /// death. See [`FailoverControl`].
    Failover(FailoverControl),
    /// Graceful shutdown of the receiving host loop.
    Shutdown,
    /// Primary → backup: a write-ahead relayed push, tagged with the store
    /// version it produces (`seq`) and the learning rate the primary will
    /// apply it with. The tag makes the at-least-once relay idempotent — a
    /// backup that already holds `seq` (it survived a primary crash, or
    /// caught up through a rejoin tail) acks without re-applying, so no
    /// push can land twice.
    RelayPush {
        /// Store version this push produces (`version + 1` at the
        /// primary when the push was journalled).
        seq: u64,
        /// The originating worker (per-worker counters replay exactly).
        worker: WorkerId,
        /// Learning rate the primary applies — carried so both replicas
        /// run bit-identical arithmetic regardless of local epoch state.
        lr: f32,
        /// The gradient.
        payload: PushPayload,
    },
}

impl WireMessage {
    /// The transfer-accounting class of this message, tying the wire
    /// vocabulary to the simulator's [`MessageSizes`] model: snapshots and
    /// gradients are bulk, everything else is control traffic.
    pub fn class(&self) -> MessageClass {
        match self {
            WireMessage::Pull { .. } | WireMessage::PullReply { .. } => MessageClass::PullParams,
            WireMessage::Push { .. }
            | WireMessage::PushAck { .. }
            | WireMessage::RelayPush { .. } => MessageClass::PushGrad,
            WireMessage::Notify { .. } => MessageClass::Notify,
            WireMessage::Abort { .. } => MessageClass::Resync,
            WireMessage::Check { .. }
            | WireMessage::Heartbeat { .. }
            | WireMessage::Failover(_)
            | WireMessage::Shutdown => MessageClass::Control,
        }
    }

    /// The worker a message concerns, when it names one.
    pub fn worker(&self) -> Option<WorkerId> {
        match self {
            WireMessage::Pull { worker }
            | WireMessage::Push { worker, .. }
            | WireMessage::Notify { worker, .. }
            | WireMessage::Check { worker }
            | WireMessage::Abort { worker }
            | WireMessage::Heartbeat { worker } => Some(*worker),
            // `RelayPush` is replica-plane traffic: the worker field is
            // replay bookkeeping, not a connection identity, so the
            // scheduler must never bind a connection to it.
            WireMessage::PullReply { .. }
            | WireMessage::PushAck { .. }
            | WireMessage::Failover(_)
            | WireMessage::RelayPush { .. }
            | WireMessage::Shutdown => None,
        }
    }
}

/// The failover control vocabulary, nested under
/// [`WireMessage::Failover`].
///
/// In the simulator these verbs drive the in-process
/// [`ReplicatedStore`](specsync_ps::ReplicatedStore) pair; over TCP the
/// scheduler uses them to promote a warm-backup *process* and to tell
/// reconnecting workers where the primary now lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailoverControl {
    /// A shard replica crashed (fault injection, or declared dead by the
    /// scheduler's heartbeat silence detector).
    Crash {
        /// Replica index.
        server: u64,
    },
    /// Promote the warm backup of `server`'s pair to primary.
    Promote {
        /// Replica index of the crashed node whose backup takes over.
        server: u64,
    },
    /// Promotion reply: the backup now serves, at `version`, after
    /// replaying `replayed` journalled pushes.
    Promoted {
        /// Replica index that was promoted.
        server: u64,
        /// Store version after promotion.
        version: u64,
        /// Journalled pushes replayed to catch up.
        replayed: u64,
    },
    /// Re-admit a recovered node as the new warm backup.
    Recover {
        /// Replica index rejoining.
        server: u64,
    },
    /// Generic acknowledgement for `Crash`/`Recover`.
    Ack {
        /// Replica index the ack concerns.
        server: u64,
    },
    /// Shard process → scheduler, on connect: here is my listen address.
    /// `backup` marks the warm standby.
    Register {
        /// Shard id.
        server: u64,
        /// Whether this process is the warm backup.
        backup: bool,
        /// The address the shard serves workers on.
        addr: String,
    },
    /// Worker → scheduler: which address is the primary shard right now?
    /// (Sent after a connection failure, before reconnecting.)
    QueryPrimary,
    /// Scheduler → worker: the current primary address. `epoch` counts
    /// promotions, so a worker can tell a stale answer from a fresh one.
    Primary {
        /// Address of the serving primary.
        addr: String,
        /// Promotion epoch (0 until the first failover).
        epoch: u64,
    },
    /// Fresh shard process → primary: provision me as the warm backup.
    /// Opens the rejoin protocol: the primary answers with a chunked
    /// [`SnapshotChunk`](Self::SnapshotChunk) stream, a
    /// [`CatchUp`](Self::CatchUp) header, the journal tail as
    /// [`RelayPush`](WireMessage::RelayPush) frames, and then keeps the
    /// connection as its live write-ahead relay.
    JoinAsBackup {
        /// The joining shard's id.
        server: u64,
        /// The address the joiner serves workers on (registered with the
        /// scheduler once parity is reached).
        addr: String,
    },
    /// Primary → joiner: one bounded chunk of the
    /// [`StoreCheckpoint`](specsync_ps::StoreCheckpoint) byte stream.
    /// Chunk size is capped by `NetConfig::join_chunk_bytes`, so no frame
    /// approaches `PAYLOAD_LIMIT` however large the store grows.
    SnapshotChunk {
        /// 0-based chunk index.
        index: u64,
        /// Total chunks in this snapshot.
        total: u64,
        /// The raw checkpoint bytes of this chunk.
        data: Vec<u8>,
    },
    /// Primary → joiner: snapshot complete; `entries` journal-tail pushes
    /// follow as `RelayPush` frames, carrying the store through version
    /// `through`. Parity is defined as the joiner reaching exactly
    /// `through`.
    CatchUp {
        /// Number of tail entries about to be replayed.
        entries: u64,
        /// Store version after the full tail is applied.
        through: u64,
    },
    /// Joiner → primary: snapshot restored and tail applied; I serve at
    /// `version` having replayed `replayed` tail pushes. The primary
    /// verifies `version` against the promised parity point before wiring
    /// the connection in as its live relay.
    BackupReady {
        /// The joined shard's id.
        server: u64,
        /// Store version the joiner reached.
        version: u64,
        /// Tail pushes the joiner applied.
        replayed: u64,
    },
}

/// Byte sizes of each PS message class for one workload.
///
/// The experiment harness accounts transfer volume at the *paper's* model
/// scale (millions of parameters, 4 bytes each), even though the trained
/// model is smaller — this keeps Fig. 12/13 magnitudes comparable to the
/// paper's TB-scale numbers. Control messages (`notify`/`re-sync`) carry a
/// sender id and a timestamp, "a short list of numbers" per §V-B.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MessageSizes {
    /// Bytes for one full parameter pull.
    pub pull_bytes: u64,
    /// Bytes for one gradient push (same dimensionality as a pull).
    pub push_bytes: u64,
    /// Bytes for a `notify` control message.
    pub notify_bytes: u64,
    /// Bytes for a `re-sync` control message.
    pub resync_bytes: u64,
    /// Bytes for other control traffic.
    pub control_bytes: u64,
}

impl MessageSizes {
    /// Sizes for a model of `num_parameters` parameters at 4 bytes each,
    /// with 16-byte control messages (id + timestamp).
    pub fn for_model(num_parameters: u64) -> Self {
        MessageSizes {
            pull_bytes: num_parameters * 4,
            push_bytes: num_parameters * 4,
            notify_bytes: 16,
            resync_bytes: 16,
            control_bytes: 16,
        }
    }

    /// The byte size of a message of the given class.
    pub fn bytes_for(&self, class: MessageClass) -> u64 {
        match class {
            MessageClass::PullParams => self.pull_bytes,
            MessageClass::PushGrad => self.push_bytes,
            MessageClass::Notify => self.notify_bytes,
            MessageClass::Resync => self.resync_bytes,
            MessageClass::Control => self.control_bytes,
        }
    }

    /// The modelled byte size of a wire message, via its class.
    pub fn bytes_for_frame(&self, frame: &WireMessage) -> u64 {
        self.bytes_for(frame.class())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_sizes_scale_with_parameter_count() {
        let s = MessageSizes::for_model(2_500_000);
        assert_eq!(s.pull_bytes, 10_000_000);
        assert_eq!(s.push_bytes, 10_000_000);
        assert_eq!(s.notify_bytes, 16);
    }

    #[test]
    fn bytes_for_covers_every_class() {
        let s = MessageSizes::for_model(100);
        for class in MessageClass::ALL {
            assert!(s.bytes_for(class) > 0);
        }
        assert_eq!(s.bytes_for(MessageClass::PullParams), 400);
        assert_eq!(s.bytes_for(MessageClass::Resync), 16);
    }

    #[test]
    fn every_frame_maps_to_a_class() {
        let w = WorkerId::new(3);
        let frames = [
            (WireMessage::Pull { worker: w }, MessageClass::PullParams),
            (
                WireMessage::PullReply {
                    version: 1,
                    params: Arc::from(vec![0.0f32].as_slice()),
                },
                MessageClass::PullParams,
            ),
            (
                WireMessage::Push {
                    worker: w,
                    payload: PushPayload::Dense(vec![1.0]),
                },
                MessageClass::PushGrad,
            ),
            (
                WireMessage::PushAck {
                    version: 2,
                    pushes_by_worker: 1,
                },
                MessageClass::PushGrad,
            ),
            (
                WireMessage::Notify {
                    worker: w,
                    pushes: 4,
                },
                MessageClass::Notify,
            ),
            (WireMessage::Check { worker: w }, MessageClass::Control),
            (WireMessage::Abort { worker: w }, MessageClass::Resync),
            (WireMessage::Heartbeat { worker: w }, MessageClass::Control),
            (
                WireMessage::Failover(FailoverControl::QueryPrimary),
                MessageClass::Control,
            ),
            (
                WireMessage::Failover(FailoverControl::JoinAsBackup {
                    server: 2,
                    addr: "127.0.0.1:9".into(),
                }),
                MessageClass::Control,
            ),
            (
                WireMessage::Failover(FailoverControl::SnapshotChunk {
                    index: 0,
                    total: 1,
                    data: vec![1, 2, 3],
                }),
                MessageClass::Control,
            ),
            (
                WireMessage::Failover(FailoverControl::CatchUp {
                    entries: 4,
                    through: 21,
                }),
                MessageClass::Control,
            ),
            (
                WireMessage::Failover(FailoverControl::BackupReady {
                    server: 2,
                    version: 21,
                    replayed: 4,
                }),
                MessageClass::Control,
            ),
            (
                WireMessage::RelayPush {
                    seq: 5,
                    worker: w,
                    lr: 0.1,
                    payload: PushPayload::Dense(vec![1.0]),
                },
                MessageClass::PushGrad,
            ),
            (WireMessage::Shutdown, MessageClass::Control),
        ];
        let sizes = MessageSizes::for_model(100);
        for (frame, class) in frames {
            assert_eq!(frame.class(), class, "{frame:?}");
            assert_eq!(sizes.bytes_for_frame(&frame), sizes.bytes_for(class));
        }
    }

    #[test]
    fn worker_extraction() {
        let w = WorkerId::new(7);
        assert_eq!(WireMessage::Pull { worker: w }.worker(), Some(w));
        assert_eq!(WireMessage::Shutdown.worker(), None);
        assert_eq!(
            WireMessage::PushAck {
                version: 0,
                pushes_by_worker: 0
            }
            .worker(),
            None
        );
        // A relayed push names its originating worker but must *not*
        // expose it as a connection identity — the scheduler would bind
        // the relay conn to that worker otherwise.
        assert_eq!(
            WireMessage::RelayPush {
                seq: 1,
                worker: w,
                lr: 0.1,
                payload: PushPayload::Dense(vec![0.0]),
            }
            .worker(),
            None
        );
    }
}
