//! The transport's connection policy: per-op deadlines, jittered
//! exponential backoff with a retry budget, and a per-peer circuit
//! breaker.
//!
//! PR 8's transport retried forever with an unjittered sleep; under a
//! hostile network that either hammers a struggling peer or synchronizes
//! every worker's reconnect into a storm. [`ConnPolicy`] bounds and
//! spreads the retries; [`CircuitBreaker`] converts repeated failure
//! into fast-fail plus a half-open probe, which is what lets a worker
//! *park* (degraded mode) instead of spinning.
//!
//! The breaker is a pure state machine over a caller-supplied monotonic
//! `now: Duration` (the transport feeds it
//! [`WallElapsed`](crate::transport::WallElapsed) readings), so its
//! transitions unit-test deterministically without touching a clock.
//!
//! # State machine
//!
//! ```text
//!            consecutive failures < threshold
//!           ┌─────────────────────────────────┐
//!           ▼                                 │ failure
//!        CLOSED ──────────────────────────────┘
//!           │ failure # == threshold
//!           ▼
//!         OPEN ──(cooldown elapses)──▶ HALF-OPEN
//!           ▲                              │
//!           │ probe fails                  │ probe succeeds
//!           └──────────────────────────────▼
//!                                       CLOSED
//! ```
//!
//! While OPEN, [`CircuitBreaker::admit`] fast-fails without touching the
//! socket; the first admit after the cooldown is a *probe* (exactly one
//! in-flight attempt — HALF-OPEN admits no others until it resolves).

use std::time::Duration;

use specsync_core::Backoff;

use crate::config::NetConfig;

/// Per-connection operating rules derived from [`NetConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnPolicy {
    /// Deadline for one socket send (write timeout on the stream).
    pub send_deadline: Duration,
    /// Deadline for one socket receive (read timeout on the stream).
    pub recv_deadline: Duration,
    /// Retries one logical operation may spend before the transport
    /// escalates (emits `RetryExhausted` and degrades).
    pub op_retry_budget: u32,
    /// The shared exponential backoff schedule.
    pub backoff: Backoff,
    /// Seed for deterministic jitter — distinct per worker, so retry
    /// storms decorrelate while each worker stays reproducible.
    pub jitter_seed: u64,
    /// Consecutive failures that trip the breaker open.
    pub breaker_threshold: u32,
    /// How long the breaker fast-fails before half-opening a probe.
    pub breaker_cooldown: Duration,
}

impl ConnPolicy {
    /// Derives the policy a transport should run with. `jitter_seed`
    /// should identify the worker (e.g. its index) so schedules
    /// decorrelate across processes.
    pub fn from_config(config: &NetConfig, jitter_seed: u64) -> Self {
        ConnPolicy {
            send_deadline: config.io_timeout,
            recv_deadline: config.io_timeout,
            op_retry_budget: config.op_retry_budget,
            backoff: Backoff::new(config.retry_backoff, config.connect_retries),
            jitter_seed,
            breaker_threshold: config.breaker_threshold,
            breaker_cooldown: config.breaker_cooldown,
        }
    }

    /// The jittered delay before retry `attempt` (0-based), saturating at
    /// the schedule's final delay once the backoff budget is spent — the
    /// policy layer above decides when to give up, this only paces.
    pub fn retry_delay(&self, attempt: u32) -> Duration {
        let capped = attempt.min(self.backoff.max_retries.saturating_sub(1));
        self.backoff
            .jittered(capped, self.jitter_seed)
            .unwrap_or(self.backoff.base)
    }

    /// A fresh breaker for one peer under this policy.
    pub fn new_breaker(&self) -> CircuitBreaker {
        CircuitBreaker::new(self.breaker_threshold, self.breaker_cooldown)
    }
}

/// What [`CircuitBreaker::admit`] tells the caller to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admit {
    /// Breaker closed: proceed normally.
    Proceed,
    /// Breaker half-open: this attempt is the probe — success closes the
    /// breaker, failure re-opens it for another cooldown.
    Probe,
    /// Breaker open: fast-fail without touching the socket; retry no
    /// sooner than the embedded instant (same clock the caller feeds in).
    FastFail {
        /// When the cooldown elapses and a probe will be admitted.
        retry_at: Duration,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    Closed,
    Open { until: Duration },
    HalfOpen,
}

/// Per-peer circuit breaker: consecutive failures trip it open; while
/// open, operations fast-fail; after the cooldown one probe is admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: Duration,
    consecutive_failures: u32,
    state: BreakerState,
    /// Lifetime count of trips to OPEN (telemetry).
    trips: u64,
}

impl CircuitBreaker {
    /// A closed breaker that trips after `threshold` consecutive
    /// failures and fast-fails for `cooldown` before probing.
    pub fn new(threshold: u32, cooldown: Duration) -> Self {
        CircuitBreaker {
            threshold: threshold.max(1),
            cooldown,
            consecutive_failures: 0,
            state: BreakerState::Closed,
            trips: 0,
        }
    }

    /// Should an operation proceed at time `now`?
    pub fn admit(&mut self, now: Duration) -> Admit {
        match self.state {
            BreakerState::Closed => Admit::Proceed,
            BreakerState::Open { until } if now >= until => {
                self.state = BreakerState::HalfOpen;
                Admit::Probe
            }
            BreakerState::Open { until } => Admit::FastFail { retry_at: until },
            // One probe is already in flight; admit nothing else.
            BreakerState::HalfOpen => Admit::FastFail {
                retry_at: now + self.cooldown,
            },
        }
    }

    /// Records a successful operation: closes the breaker, clears the
    /// failure streak.
    pub fn on_success(&mut self) {
        self.consecutive_failures = 0;
        self.state = BreakerState::Closed;
    }

    /// Records a failed operation at `now`. Returns `true` when this
    /// failure *trips* the breaker open (the caller emits `CircuitOpen`
    /// exactly once per trip).
    pub fn on_failure(&mut self, now: Duration) -> bool {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        match self.state {
            // A failed probe re-opens immediately.
            BreakerState::HalfOpen => {
                self.state = BreakerState::Open {
                    until: now + self.cooldown,
                };
                self.trips += 1;
                true
            }
            BreakerState::Closed if self.consecutive_failures >= self.threshold => {
                self.state = BreakerState::Open {
                    until: now + self.cooldown,
                };
                self.trips += 1;
                true
            }
            BreakerState::Closed | BreakerState::Open { .. } => false,
        }
    }

    /// The current consecutive-failure streak.
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures
    }

    /// Lifetime count of trips to OPEN.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Whether the breaker is currently open (fast-failing).
    pub fn is_open(&self) -> bool {
        matches!(self.state, BreakerState::Open { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: Duration = Duration::from_millis(1);

    fn policy() -> ConnPolicy {
        let config = NetConfig::default();
        ConnPolicy::from_config(&config, 7)
    }

    #[test]
    fn breaker_trips_after_threshold_and_fast_fails() {
        let mut b = CircuitBreaker::new(3, 10 * MS);
        let now = Duration::ZERO;
        assert_eq!(b.admit(now), Admit::Proceed);
        assert!(!b.on_failure(now));
        assert!(!b.on_failure(now));
        assert!(b.on_failure(now), "third failure trips");
        assert_eq!(b.trips(), 1);
        assert!(b.is_open());
        match b.admit(5 * MS) {
            Admit::FastFail { retry_at } => assert_eq!(retry_at, 10 * MS),
            other => panic!("expected FastFail, got {other:?}"),
        }
    }

    #[test]
    fn breaker_half_opens_probe_then_closes_on_success() {
        let mut b = CircuitBreaker::new(1, 10 * MS);
        assert!(b.on_failure(Duration::ZERO));
        assert_eq!(b.admit(10 * MS), Admit::Probe);
        // While the probe is in flight nothing else is admitted.
        assert!(matches!(b.admit(11 * MS), Admit::FastFail { .. }));
        b.on_success();
        assert_eq!(b.admit(12 * MS), Admit::Proceed);
        assert_eq!(b.consecutive_failures(), 0);
    }

    #[test]
    fn failed_probe_reopens_for_another_cooldown() {
        let mut b = CircuitBreaker::new(1, 10 * MS);
        assert!(b.on_failure(Duration::ZERO));
        assert_eq!(b.admit(10 * MS), Admit::Probe);
        assert!(b.on_failure(10 * MS), "failed probe re-trips");
        assert_eq!(b.trips(), 2);
        match b.admit(12 * MS) {
            Admit::FastFail { retry_at } => assert_eq!(retry_at, 20 * MS),
            other => panic!("expected FastFail, got {other:?}"),
        }
        assert_eq!(b.admit(20 * MS), Admit::Probe);
    }

    #[test]
    fn zero_threshold_is_clamped_to_one() {
        let mut b = CircuitBreaker::new(0, 10 * MS);
        assert!(b.on_failure(Duration::ZERO), "first failure trips");
    }

    #[test]
    fn retry_delay_jitters_within_schedule_and_saturates() {
        let p = policy();
        for attempt in 0..p.backoff.max_retries {
            let full = p.backoff.delay(attempt).unwrap();
            let d = p.retry_delay(attempt);
            assert!(d <= full && d >= full / 2, "attempt {attempt}: {d:?}");
        }
        // Past the budget the delay saturates at the final step's jitter
        // rather than underflowing or panicking.
        let last = p.retry_delay(p.backoff.max_retries.saturating_sub(1));
        assert_eq!(p.retry_delay(p.backoff.max_retries + 5), last);
    }

    #[test]
    fn distinct_seeds_decorrelate_retry_schedules() {
        let config = NetConfig::default();
        let a = ConnPolicy::from_config(&config, 1);
        let b = ConnPolicy::from_config(&config, 2);
        let sched = |p: &ConnPolicy| (0..8).map(|i| p.retry_delay(i)).collect::<Vec<_>>();
        assert_ne!(sched(&a), sched(&b));
        assert_eq!(sched(&a), sched(&a), "per-seed schedule is stable");
    }
}
