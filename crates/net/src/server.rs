//! The process-level hosts: a TCP shard server fronting a [`ShardHost`]
//! and a TCP scheduler server fronting the core SpecSync [`Scheduler`] —
//! together they let the roles of the paper's Fig. 7 run as separate OS
//! processes on one host.
//!
//! # Shard server
//!
//! A blocking accept loop hands each connection to its own thread.
//! Pulls are served from the host's per-version encoded-frame cache
//! (serialize once, share the bytes across every concurrent client);
//! pushes funnel through a **single apply thread**, which write-ahead
//! relays each push to the warm-backup process *before* applying it
//! locally — one thread doing both means relay order equals apply
//! order, so the backup replays the primary's exact sequence. The relay
//! carries [`WireMessage::RelayPush`] frames tagged with the store
//! version each push produces, so delivery can stay at-least-once while
//! the backup applies exactly once (redeliveries are acked without
//! re-applying).
//!
//! The apply thread also owns **backup (re)provisioning**: a fresh
//! process connects, sends `JoinAsBackup`, and the apply thread streams
//! it a `StoreCheckpoint` in bounded `SnapshotChunk` frames plus the
//! journal tail as `RelayPush` replays. Because live pushes queue behind
//! the join command on the same channel, the snapshot is a clean cut of
//! the push order — everything after parity reaches the new backup as a
//! live relay down the very same connection.
//!
//! # Scheduler server
//!
//! One central loop owns every connection's writer and all protocol
//! state, exactly like the threaded runtime's scheduler thread — frames
//! arrive over a channel from per-connection reader threads, and timer
//! deadlines re-enter through [`WireMessage::Check`] so a speculation
//! window fires through the same handler whether a socket or a clock woke
//! it. The loop detects a dead primary shard two ways (its connection
//! closing, or heartbeat silence past the timeout) and promotes the warm
//! backup by sending `Failover(Promote)` down the backup's registered
//! connection; the backup's `Promoted` reply flips the advertised primary
//! address and bumps the promotion epoch that reconnecting workers see.

use std::collections::BTreeMap;
use std::io;
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use specsync_core::Scheduler;
use specsync_ps::{JournalEntry, ParameterStore, ReplicatedStore, StoreCheckpoint};
use specsync_simnet::{SimDuration, VirtualTime, WorkerId};
use specsync_sync::{SchemeKind, TuningMode};
use specsync_telemetry::{Event, EventSink, NullSink};

use crate::chaos::{ChaosListener, ChaosStream, ConnSeq};
use crate::config::NetConfig;
use crate::error::NetError;
use crate::frame::{read_frame, write_frame, ReadOutcome};
use crate::host::ShardHost;
use crate::transport::WallElapsed;
use crate::transport::{ConnTarget, FrameConn};
use crate::wire::{FailoverControl, WireMessage};

// ---------------------------------------------------------------- shard

/// Counters a [`ShardServer`] accumulates; cheap atomics shared across
/// connection threads.
#[derive(Debug, Default)]
pub(crate) struct ShardCounters {
    pulls_served: AtomicU64,
    pushes_applied: AtomicU64,
    relayed: AtomicU64,
    /// Pushes absorbed via the write-ahead relay while still a backup —
    /// reported as `replayed` in the `Promoted` frame.
    absorbed: AtomicU64,
}

/// What a [`ShardServer::run`] did, reported when the server stops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Pull requests answered.
    pub pulls_served: u64,
    /// Pushes applied to the local store.
    pub pushes_applied: u64,
    /// Pushes write-ahead relayed to the warm backup.
    pub relayed: u64,
    /// Whether this process ended the run as the serving primary.
    pub serving: bool,
    /// Final store version.
    pub version: u64,
}

/// A parameter-server shard as an OS process: a [`ShardHost`] behind a
/// TCP listener. See the module docs for the threading model.
pub struct ShardServer {
    shard_id: u64,
    listener: TcpListener,
    local_addr: String,
    host: Arc<Mutex<ShardHost>>,
    config: NetConfig,
    /// Whether this process currently serves workers (primaries start
    /// `true`, warm backups `false` until promoted).
    serving: Arc<AtomicBool>,
    stop: Arc<AtomicBool>,
    counters: Arc<ShardCounters>,
    backup_addr: Option<String>,
    sched_addr: Option<String>,
    join_addr: Option<String>,
}

/// What the single apply thread consumes: push-class frames in arrival
/// order, interleaved with join requests from re-provisioning backups.
enum ApplyCmd {
    /// A push to relay-then-apply, with the accepting connection thread's
    /// reply channel.
    Frame(WireMessage, Sender<WireMessage>),
    /// A joining backup's connection: stream it a snapshot plus the
    /// journal tail, then adopt it as the write-ahead relay target.
    Join(FrameConn),
}

impl std::fmt::Debug for ShardServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardServer")
            .field("shard_id", &self.shard_id)
            .field("addr", &self.local_addr)
            .field("serving", &self.serving.load(Ordering::SeqCst))
            .finish_non_exhaustive()
    }
}

impl ShardServer {
    /// Binds a shard listener (use port 0 for an OS-assigned port).
    ///
    /// # Errors
    ///
    /// I/O errors from binding, or an invalid configuration — a
    /// degenerate heartbeat ordering is refused here, before the process
    /// joins a cluster it would destabilize.
    pub fn bind(
        shard_id: u64,
        addr: &str,
        host: ShardHost,
        config: NetConfig,
    ) -> Result<Self, NetError> {
        config.try_validate().map_err(NetError::Config)?;
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?.to_string();
        Ok(ShardServer {
            shard_id,
            listener,
            local_addr,
            host: Arc::new(Mutex::new(host)),
            config,
            serving: Arc::new(AtomicBool::new(true)),
            stop: Arc::new(AtomicBool::new(false)),
            counters: Arc::new(ShardCounters::default()),
            backup_addr: None,
            sched_addr: None,
            join_addr: None,
        })
    }

    /// The address the shard actually listens on.
    pub fn local_addr(&self) -> &str {
        &self.local_addr
    }

    /// Starts as the warm backup: refuse worker pulls, absorb relayed
    /// pushes, and wait for the scheduler's `Promote`.
    pub fn as_backup(self) -> Self {
        self.serving.store(false, Ordering::SeqCst);
        self
    }

    /// Write-ahead relay target: the warm-backup process's address. Set
    /// on the primary.
    pub fn with_backup_relay(mut self, addr: &str) -> Self {
        self.backup_addr = Some(addr.to_string());
        self
    }

    /// Registers with a scheduler: the shard connects, announces its
    /// address and role, heartbeats, and obeys `Promote`/`Shutdown` sent
    /// back down the same connection.
    pub fn with_scheduler(mut self, addr: &str) -> Self {
        self.sched_addr = Some(addr.to_string());
        self
    }

    /// Re-provisions this shard from the live primary at `addr` before
    /// serving: stream its checkpoint, replay the journal tail to parity,
    /// and stay on the connection as the primary's new write-ahead relay
    /// target. Implies backup duty; combine with [`Self::as_backup`].
    pub fn join_via(mut self, addr: &str) -> Self {
        self.join_addr = Some(addr.to_string());
        self
    }

    /// A handle that flips this server's stop flag (for embedding in
    /// tests; shard processes normally stop on the scheduler's
    /// `Shutdown`).
    pub fn stop_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// The live counters, observable while the server runs (tests use
    /// this to wait for a rejoin handshake to finish before stopping).
    #[cfg(test)]
    pub(crate) fn counters_handle(&self) -> Arc<ShardCounters> {
        Arc::clone(&self.counters)
    }

    /// Serves until shutdown. Blocking; returns the run's counters.
    ///
    /// # Errors
    ///
    /// Connection errors reaching the scheduler or the backup relay at
    /// startup. Per-connection errors after startup drop the connection,
    /// never the server.
    pub fn run(self) -> Result<ShardStats, NetError> {
        let ShardServer {
            shard_id,
            listener,
            local_addr,
            host,
            config,
            serving,
            stop,
            counters,
            backup_addr,
            sched_addr,
            join_addr,
        } = self;

        // Per-process outbound connection sequence: chaos scripts advance
        // per label, so reconnects draw fresh fault streams.
        let seq = ConnSeq::new();

        // Write-ahead relay to the warm backup, handed to the apply
        // thread (relay-then-apply in one thread keeps the orders equal).
        let relay = match &backup_addr {
            Some(addr) => Some(FrameConn::connect_with_retries(
                addr,
                &config,
                &ConnTarget::new("relay", &seq, shard_id),
                |_| {},
            )?),
            None => None,
        };

        // Single apply thread: every push (from any connection) funnels
        // through here in channel order, as do join requests — so a
        // snapshot handed to a joiner is a clean cut of the push order.
        let (apply_tx, apply_rx) = unbounded::<ApplyCmd>();
        {
            let host = Arc::clone(&host);
            let counters = Arc::clone(&counters);
            let serving = Arc::clone(&serving);
            let chunk_bytes = config.join_chunk_bytes;
            let mut relay = relay;
            std::thread::spawn(move || {
                while let Ok(cmd) = apply_rx.recv() {
                    match cmd {
                        ApplyCmd::Frame(frame, reply_tx) => {
                            if let Some(conn) = relay.as_mut() {
                                // Tag the relayed push with the version it
                                // will produce so the backup can ack a
                                // redelivery without re-applying it.
                                let tagged = {
                                    let locked = host.lock();
                                    locked.tag_relay(&frame)
                                };
                                if let Some(relay_frame) = tagged {
                                    // Write-ahead: the backup holds the push
                                    // before the primary applies it. A dead
                                    // relay degrades to unreplicated serving
                                    // rather than stalling the run.
                                    if conn.exchange(&relay_frame).is_err() {
                                        relay = None;
                                    } else {
                                        counters.relayed.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                            }
                            let applied = {
                                let mut locked = host.lock();
                                locked.handle(frame)
                            };
                            if let Ok(Some(ack)) = applied {
                                counters.pushes_applied.fetch_add(1, Ordering::Relaxed);
                                if !serving.load(Ordering::SeqCst) {
                                    counters.absorbed.fetch_add(1, Ordering::Relaxed);
                                }
                                let _ = reply_tx.send(ack);
                            }
                        }
                        ApplyCmd::Join(mut conn) => {
                            let (checkpoint, tail) = {
                                let mut locked = host.lock();
                                locked.replica_mut().rejoin_snapshot()
                            };
                            if stream_rejoin(&mut conn, &checkpoint, &tail, chunk_bytes).is_ok() {
                                counters
                                    .relayed
                                    .fetch_add(tail.len() as u64, Ordering::Relaxed);
                                // The joiner confirmed parity: it replaces
                                // whatever relay target this process had.
                                relay = Some(conn);
                            }
                        }
                    }
                }
            });
        }

        // A rejoining backup provisions itself from the live primary
        // before talking to the scheduler, so it is only ever armed for
        // promotion at parity.
        let mut joined: Option<(u64, u64)> = None;
        if let Some(addr) = &join_addr {
            let mut conn = FrameConn::connect_with_retries(
                addr,
                &config,
                &ConnTarget::new("join", &seq, shard_id),
                |_| {},
            )?;
            let (version, replayed) = join_cluster(&mut conn, shard_id, &local_addr, &host)?;
            counters.pushes_applied.fetch_add(replayed, Ordering::Relaxed);
            counters.absorbed.fetch_add(replayed, Ordering::Relaxed);
            joined = Some((version, replayed));
            // The same connection now carries the primary's write-ahead
            // relay: serve it like any accepted data connection. Clear
            // the outbound io timeout first — relays arrive only when
            // workers push, and an idle stretch is not a dead peer.
            conn.set_read_timeout(None).ok();
            let host = Arc::clone(&host);
            let serving = Arc::clone(&serving);
            let stop = Arc::clone(&stop);
            let counters = Arc::clone(&counters);
            let apply_tx = apply_tx.clone();
            std::thread::spawn(move || {
                serve_shard_conn(conn, &host, &serving, &stop, &counters, &apply_tx);
            });
        }

        // Scheduler link: register, heartbeat, obey control frames.
        if let Some(addr) = &sched_addr {
            let conn = FrameConn::connect_with_retries(
                addr,
                &config,
                &ConnTarget::new("sched", &seq, shard_id),
                |_| {},
            )?;
            let mut writer = conn.into_stream();
            let mut reader = writer.try_clone()?;
            reader.set_read_timeout(None).ok();
            write_frame(
                &mut writer,
                &WireMessage::Failover(FailoverControl::Register {
                    server: shard_id,
                    backup: !serving.load(Ordering::SeqCst),
                    addr: local_addr.clone(),
                }),
            )?;
            if let Some((version, replayed)) = joined {
                // Tell the scheduler the catch-up finished and where it
                // landed, so the rejoin is visible in the event stream.
                write_frame(
                    &mut writer,
                    &WireMessage::Failover(FailoverControl::BackupReady {
                        server: shard_id,
                        version,
                        replayed,
                    }),
                )?;
            }
            // Outbound frames (heartbeats + control replies) leave through
            // one writer thread, so no lock ever spans a socket write.
            let (out_tx, out_rx) = unbounded::<WireMessage>();
            {
                let stop = Arc::clone(&stop);
                let interval = config.heartbeat_interval;
                let beat = WireMessage::Heartbeat {
                    worker: WorkerId::new(shard_id as usize),
                };
                std::thread::spawn(move || loop {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let frame = match out_rx.recv_timeout(interval) {
                        Ok(frame) => frame,
                        Err(RecvTimeoutError::Timeout) => beat.clone(),
                        Err(RecvTimeoutError::Disconnected) => break,
                    };
                    if write_frame(&mut writer, &frame).is_err() {
                        break;
                    }
                });
            }
            {
                let stop = Arc::clone(&stop);
                let serving = Arc::clone(&serving);
                let host = Arc::clone(&host);
                let counters = Arc::clone(&counters);
                std::thread::spawn(move || loop {
                    match read_frame(&mut reader) {
                        Ok(ReadOutcome::Frame(WireMessage::Failover(fc), _)) => match fc {
                            FailoverControl::Promote { server } => {
                                serving.store(true, Ordering::SeqCst);
                                let version = {
                                    let locked = host.lock();
                                    locked.replica().version()
                                };
                                let _ =
                                    out_tx.send(WireMessage::Failover(FailoverControl::Promoted {
                                        server,
                                        version,
                                        replayed: counters.absorbed.load(Ordering::Relaxed),
                                    }));
                            }
                            FailoverControl::Crash { server } => {
                                serving.store(false, Ordering::SeqCst);
                                let _ = out_tx
                                    .send(WireMessage::Failover(FailoverControl::Ack { server }));
                            }
                            FailoverControl::Recover { server } => {
                                serving.store(true, Ordering::SeqCst);
                                let _ = out_tx
                                    .send(WireMessage::Failover(FailoverControl::Ack { server }));
                            }
                            // Replies and worker-plane queries carry no
                            // instruction for a shard, and the rejoin
                            // handshake runs on the data plane, not here.
                            FailoverControl::Promoted { .. }
                            | FailoverControl::Ack { .. }
                            | FailoverControl::Register { .. }
                            | FailoverControl::QueryPrimary
                            | FailoverControl::Primary { .. }
                            | FailoverControl::JoinAsBackup { .. }
                            | FailoverControl::SnapshotChunk { .. }
                            | FailoverControl::CatchUp { .. }
                            | FailoverControl::BackupReady { .. } => {}
                        },
                        Ok(ReadOutcome::Frame(WireMessage::Shutdown, _))
                        | Ok(ReadOutcome::Closed)
                        | Err(_) => {
                            // Scheduler gone or told us to stop: either
                            // way the run is over for this process.
                            stop.store(true, Ordering::SeqCst);
                            break;
                        }
                        Ok(ReadOutcome::Frame(_, _)) => {}
                    }
                });
            }
        }

        // Accept loop: non-blocking accept so the stop flag is honored.
        // Accepted streams run this process's chaos script (pass-through
        // when chaos is disabled).
        listener.set_nonblocking(true)?;
        let listener = ChaosListener::new(listener, config.chaos.clone(), "shard-accept");
        while !stop.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, peer)) => {
                    stream.set_nodelay(true).ok();
                    stream.set_nonblocking(false).ok();
                    let host = Arc::clone(&host);
                    let serving = Arc::clone(&serving);
                    let stop = Arc::clone(&stop);
                    let counters = Arc::clone(&counters);
                    let apply_tx = apply_tx.clone();
                    let peer = peer.to_string();
                    std::thread::spawn(move || {
                        serve_shard_conn(
                            FrameConn::from_chaos_stream(stream, peer),
                            &host,
                            &serving,
                            &stop,
                            &counters,
                            &apply_tx,
                        );
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(config.tick);
                }
                Err(_) => break,
            }
        }
        stop.store(true, Ordering::SeqCst);

        let mut host = host.lock();
        Ok(ShardStats {
            pulls_served: counters.pulls_served.load(Ordering::Relaxed),
            pushes_applied: counters.pushes_applied.load(Ordering::Relaxed),
            relayed: counters.relayed.load(Ordering::Relaxed),
            serving: serving.load(Ordering::SeqCst),
            version: host.replica_mut().version(),
        })
    }
}

/// One worker (or relay) connection to a shard: blocking frame loop, one
/// thread. Returning drops the connection; the server survives.
fn serve_shard_conn(
    mut conn: FrameConn,
    host: &Arc<Mutex<ShardHost>>,
    serving: &AtomicBool,
    stop: &AtomicBool,
    counters: &ShardCounters,
    apply_tx: &Sender<ApplyCmd>,
) {
    loop {
        let frame = match conn.recv() {
            Ok((frame, _)) => frame,
            Err(_) => return,
        };
        match frame {
            WireMessage::Pull { worker } => {
                // A backup refuses worker pulls: dropping the connection
                // sends the worker back to the scheduler's QueryPrimary.
                if !serving.load(Ordering::SeqCst) {
                    return;
                }
                let encoded = {
                    let mut locked = host.lock();
                    locked.encoded_pull_reply(worker)
                };
                let Ok((bytes, _staleness)) = encoded else {
                    return;
                };
                // The serialized reply is written outside the host lock;
                // concurrent pullers of the same version share `bytes`.
                if conn.write_encoded(&bytes).is_err() {
                    return;
                }
                counters.pulls_served.fetch_add(1, Ordering::Relaxed);
            }
            frame @ (WireMessage::Push { .. } | WireMessage::RelayPush { .. }) => {
                let (reply_tx, reply_rx) = bounded(1);
                if apply_tx.send(ApplyCmd::Frame(frame, reply_tx)).is_err() {
                    return;
                }
                let Ok(ack) = reply_rx.recv() else {
                    return;
                };
                if conn.write(&ack).is_err() {
                    return;
                }
            }
            WireMessage::Failover(FailoverControl::JoinAsBackup { .. }) => {
                // Only a serving primary can provision a joiner. Hand the
                // whole connection to the apply thread so the snapshot it
                // streams is a clean cut of the push order.
                if serving.load(Ordering::SeqCst) {
                    let _ = apply_tx.send(ApplyCmd::Join(conn));
                }
                return;
            }
            WireMessage::Shutdown => {
                stop.store(true, Ordering::SeqCst);
                return;
            }
            // Tolerated no-ops on a data connection.
            WireMessage::Heartbeat { .. } => {}
            // Process-level failover is driven over the scheduler link;
            // a data connection carrying control frames is a protocol
            // error, as are reply/scheduler-plane frames.
            WireMessage::Failover(_)
            | WireMessage::PullReply { .. }
            | WireMessage::PushAck { .. }
            | WireMessage::Notify { .. }
            | WireMessage::Check { .. }
            | WireMessage::Abort { .. } => return,
        }
    }
}

/// Primary side of the rejoin protocol: stream the checkpoint in bounded
/// chunks, announce the journal tail, replay it, and wait for the joiner
/// to confirm parity. `Ok` means the connection sits at the primary's
/// exact version and is safe to adopt as the write-ahead relay.
fn stream_rejoin(
    conn: &mut FrameConn,
    checkpoint: &StoreCheckpoint,
    tail: &[JournalEntry],
    chunk_bytes: usize,
) -> Result<(), NetError> {
    let bytes = checkpoint.encode();
    // An encoded checkpoint is never empty (magic + header), so there is
    // always at least one chunk and every index stays below `total`.
    let total = bytes.chunks(chunk_bytes).count() as u64;
    for (index, data) in bytes.chunks(chunk_bytes).enumerate() {
        conn.write(&WireMessage::Failover(FailoverControl::SnapshotChunk {
            index: index as u64,
            total,
            data: data.to_vec(),
        }))?;
    }
    let through = checkpoint.version() + tail.len() as u64;
    conn.write(&WireMessage::Failover(FailoverControl::CatchUp {
        entries: tail.len() as u64,
        through,
    }))?;
    for entry in tail {
        conn.write(&WireMessage::RelayPush {
            seq: entry.seq,
            worker: entry.worker,
            lr: entry.lr,
            payload: entry.payload.clone(),
        })?;
    }
    let (reply, _) = conn.recv()?;
    let WireMessage::Failover(FailoverControl::BackupReady { version, .. }) = reply else {
        return Err(NetError::UnexpectedReply {
            want: "BackupReady",
        });
    };
    if version != through {
        return Err(NetError::Unhandled {
            what: "joining backup confirmed the wrong version",
        });
    }
    Ok(())
}

/// Joiner side of the rejoin protocol, driven before the shard registers
/// with the scheduler: announce intent, install the streamed checkpoint,
/// replay the journal tail, and confirm parity. Returns the `(version,
/// replayed)` pair confirmed to the primary.
fn join_cluster(
    conn: &mut FrameConn,
    shard_id: u64,
    local_addr: &str,
    host: &Arc<Mutex<ShardHost>>,
) -> Result<(u64, u64), NetError> {
    conn.write(&WireMessage::Failover(FailoverControl::JoinAsBackup {
        server: shard_id,
        addr: local_addr.to_string(),
    }))?;
    let mut bytes = Vec::new();
    let mut next = 0u64;
    loop {
        let (frame, _) = conn.recv()?;
        let WireMessage::Failover(FailoverControl::SnapshotChunk { index, total, data }) = frame
        else {
            return Err(NetError::UnexpectedReply {
                want: "SnapshotChunk",
            });
        };
        if index != next {
            return Err(NetError::Unhandled {
                what: "snapshot chunk out of order",
            });
        }
        bytes.extend_from_slice(&data);
        next += 1;
        if next == total {
            break;
        }
    }
    let checkpoint = StoreCheckpoint::decode(&bytes).map_err(|_| NetError::Unhandled {
        what: "streamed checkpoint failed to decode",
    })?;
    let store = ParameterStore::restore(checkpoint).map_err(|_| NetError::Unhandled {
        what: "streamed checkpoint failed to restore",
    })?;
    {
        let mut locked = host.lock();
        locked.install_store(ReplicatedStore::from_store(
            store,
            ReplicatedStore::DEFAULT_JOURNAL_CAPACITY,
        ));
    }
    let (frame, _) = conn.recv()?;
    let WireMessage::Failover(FailoverControl::CatchUp { entries, through }) = frame else {
        return Err(NetError::UnexpectedReply { want: "CatchUp" });
    };
    for _ in 0..entries {
        let (frame, _) = conn.recv()?;
        if !matches!(frame, WireMessage::RelayPush { .. }) {
            return Err(NetError::UnexpectedReply { want: "RelayPush" });
        }
        let mut locked = host.lock();
        locked.handle(frame)?;
    }
    let version = {
        let locked = host.lock();
        locked.replica().version()
    };
    if version != through {
        return Err(NetError::Unhandled {
            what: "catch-up left the joiner short of parity",
        });
    }
    conn.write(&WireMessage::Failover(FailoverControl::BackupReady {
        server: shard_id,
        version,
        replayed: entries,
    }))?;
    Ok((version, entries))
}

// ------------------------------------------------------------ scheduler

/// What drives a [`SchedulerServer`] besides the wire config.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Synchronization scheme (`Asp`, or `SpecSync` for speculation).
    pub scheme: SchemeKind,
    /// Expected worker count `m`.
    pub workers: usize,
    /// Wire-level knobs (tick, heartbeat interval/timeout, I/O timeouts).
    pub net: NetConfig,
    /// Stop once this many total pushes have been notified (`None`: run
    /// until `max_duration`).
    pub stop_after_pushes: Option<u64>,
    /// Hard wall-clock budget for the run.
    pub max_duration: Duration,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            scheme: SchemeKind::specsync_adaptive(),
            workers: 4,
            net: NetConfig::default(),
            stop_after_pushes: None,
            max_duration: Duration::from_secs(60),
        }
    }
}

/// What a [`SchedulerServer::run`] observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerRunStats {
    /// Aborts (re-sync instructions) issued to workers.
    pub aborts_issued: u64,
    /// Warm-backup promotions completed.
    pub promotions: u64,
    /// Total pushes notified across workers.
    pub total_pushes: u64,
    /// Workers declared dead by heartbeat silence.
    pub workers_marked_dead: u64,
    /// Whether the push target was reached (vs the duration budget).
    pub completed: bool,
}

/// Which kind of peer a scheduler connection turned out to be.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Peer {
    Worker(WorkerId),
    Shard {
        server: u64,
        backup: bool,
        addr: String,
    },
}

enum ConnEvent {
    Opened { id: usize, writer: ChaosStream },
    Frame { id: usize, frame: WireMessage },
    Closed { id: usize },
}

/// The SpecSync scheduler as an OS process: the core [`Scheduler`] behind
/// a TCP listener. See the module docs for the event flow.
pub struct SchedulerServer {
    listener: TcpListener,
    local_addr: String,
    cfg: SchedulerConfig,
    sink: Arc<dyn EventSink<Duration>>,
}

impl std::fmt::Debug for SchedulerServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SchedulerServer")
            .field("addr", &self.local_addr)
            .field("workers", &self.cfg.workers)
            .finish_non_exhaustive()
    }
}

impl SchedulerServer {
    /// Binds the scheduler listener (use port 0 for an OS-assigned port).
    ///
    /// # Errors
    ///
    /// I/O errors from binding, or an invalid configuration.
    pub fn bind(addr: &str, cfg: SchedulerConfig) -> Result<Self, NetError> {
        cfg.net.try_validate().map_err(NetError::Config)?;
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?.to_string();
        Ok(SchedulerServer {
            listener,
            local_addr,
            cfg,
            sink: Arc::new(NullSink),
        })
    }

    /// Routes protocol events (aborts, failovers, crashes) to `sink`.
    pub fn with_sink(mut self, sink: Arc<dyn EventSink<Duration>>) -> Self {
        self.sink = sink;
        self
    }

    /// The address the scheduler actually listens on.
    pub fn local_addr(&self) -> &str {
        &self.local_addr
    }

    /// Serves until the push target or the duration budget is reached,
    /// then broadcasts `Shutdown` to every connection. Blocking.
    ///
    /// # Errors
    ///
    /// Listener I/O errors at startup.
    pub fn run(self) -> Result<SchedulerRunStats, NetError> {
        let SchedulerServer {
            listener,
            local_addr: _,
            cfg,
            sink,
        } = self;
        let clock = WallElapsed::start();
        let (events_tx, events_rx) = unbounded::<ConnEvent>();
        let stop = Arc::new(AtomicBool::new(false));

        // Accept thread: one reader thread per connection, all frames
        // funneled into the central loop's channel.
        {
            let events_tx = events_tx.clone();
            let stop = Arc::clone(&stop);
            let tick = cfg.net.tick;
            listener.set_nonblocking(true)?;
            let listener = ChaosListener::new(listener, cfg.net.chaos.clone(), "sched-accept");
            std::thread::spawn(move || {
                let mut next_id = 0usize;
                while !stop.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            stream.set_nodelay(true).ok();
                            stream.set_nonblocking(false).ok();
                            let id = next_id;
                            next_id += 1;
                            let Ok(writer) = stream.try_clone() else {
                                continue;
                            };
                            if events_tx.send(ConnEvent::Opened { id, writer }).is_err() {
                                return;
                            }
                            let events_tx = events_tx.clone();
                            let mut reader = stream;
                            std::thread::spawn(move || loop {
                                match read_frame(&mut reader) {
                                    Ok(ReadOutcome::Frame(frame, _)) => {
                                        if events_tx.send(ConnEvent::Frame { id, frame }).is_err() {
                                            return;
                                        }
                                    }
                                    Ok(ReadOutcome::Closed) | Err(_) => {
                                        let _ = events_tx.send(ConnEvent::Closed { id });
                                        return;
                                    }
                                }
                            });
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(tick);
                        }
                        Err(_) => return,
                    }
                }
            });
        }

        let stats = central_loop(&cfg, &clock, &sink, &events_rx);
        stop.store(true, Ordering::SeqCst);
        Ok(stats)
    }
}

/// All scheduler state, owned by the one central loop — including every
/// connection's writer, so no socket write ever happens under a lock.
struct Central<'a> {
    cfg: &'a SchedulerConfig,
    clock: &'a WallElapsed,
    sink: &'a Arc<dyn EventSink<Duration>>,
    core: Scheduler,
    writers: BTreeMap<usize, ChaosStream>,
    peers: BTreeMap<usize, Peer>,
    worker_conn: BTreeMap<usize, usize>,
    /// Registered shards by id.
    shards: BTreeMap<u64, (usize, bool, String)>,
    primary: Option<u64>,
    epoch: u64,
    /// The shard a `Promote` is in flight to, until its `Promoted` reply
    /// lands (or its connection dies — either clears the latch).
    promotion_pending: Option<u64>,
    timers: Vec<(VirtualTime, WorkerId)>,
    per_worker: Vec<u64>,
    epochs: u64,
    /// `None` until the worker's first frame: a worker that has never
    /// spoken is still starting up (multi-process spawns are slow), and
    /// the silence timeout only applies after first contact.
    last_worker_beat: Vec<Option<VirtualTime>>,
    worker_dead: Vec<bool>,
    last_shard_beat: BTreeMap<u64, VirtualTime>,
    stats: SchedulerRunStats,
}

impl Central<'_> {
    fn now_vt(&self) -> VirtualTime {
        VirtualTime::from_micros(self.clock.elapsed().as_micros().min(u64::MAX as u128) as u64)
    }

    fn write_to(&mut self, conn: usize, frame: &WireMessage) {
        if let Some(stream) = self.writers.get_mut(&conn) {
            if write_frame(stream, frame).is_err() {
                self.writers.remove(&conn);
            }
        }
    }

    fn write_to_worker(&mut self, worker: WorkerId, frame: &WireMessage) {
        if let Some(&conn) = self.worker_conn.get(&worker.index()) {
            self.write_to(conn, frame);
        }
    }

    /// The shared decision path for a speculation-window check, entered
    /// by timer firings (routed through `WireMessage::Check`) and by any
    /// future wire-delivered `Check`.
    fn on_check_frame(&mut self, worker: WorkerId, deadline: VirtualTime) {
        if self.core.on_check(worker, deadline) {
            self.stats.aborts_issued += 1;
            self.sink
                .record(self.clock.elapsed(), &Event::AbortIssued { worker });
            self.write_to_worker(worker, &WireMessage::Abort { worker });
        }
    }

    fn worker_beat(&mut self, worker: WorkerId, now: VirtualTime) {
        let w = worker.index();
        if w >= self.last_worker_beat.len() {
            return;
        }
        self.last_worker_beat[w] = Some(now);
        if self.worker_dead[w] && matches!(self.core.try_mark_alive(worker, now), Ok(true)) {
            self.worker_dead[w] = false;
            self.sink.record(
                self.clock.elapsed(),
                &Event::WorkerRecovered { worker, epoch: 0 },
            );
        }
    }

    /// Starts warm-backup promotion (at most one in flight): tell the
    /// registered backup to take over.
    fn initiate_promotion(&mut self) {
        if self.promotion_pending.is_some() {
            return;
        }
        let backup = self
            .shards
            .iter()
            .find(|(id, (_, is_backup, _))| *is_backup && Some(**id) != self.primary)
            .map(|(id, (conn, _, _))| (*id, *conn));
        if let Some((server, conn)) = backup {
            self.promotion_pending = Some(server);
            self.write_to(
                conn,
                &WireMessage::Failover(FailoverControl::Promote { server }),
            );
        }
    }

    fn handle_frame(&mut self, conn: usize, frame: WireMessage) {
        let now = self.now_vt();
        // Bind an unidentified connection to the worker its first frame
        // names (shard connections identify themselves via Register).
        if let std::collections::btree_map::Entry::Vacant(entry) = self.peers.entry(conn) {
            if let Some(worker) = frame.worker() {
                entry.insert(Peer::Worker(worker));
                self.worker_conn.insert(worker.index(), conn);
            }
        }
        let from_shard = matches!(self.peers.get(&conn), Some(Peer::Shard { .. }));
        match frame {
            WireMessage::Failover(fc) => match fc {
                FailoverControl::Register {
                    server,
                    backup,
                    addr,
                } => {
                    self.peers.insert(
                        conn,
                        Peer::Shard {
                            server,
                            backup,
                            addr: addr.clone(),
                        },
                    );
                    self.shards.insert(server, (conn, backup, addr));
                    self.last_shard_beat.insert(server, now);
                    if backup {
                        // A (re)joined warm backup is armed: the next
                        // promotion can target it.
                        self.sink.record(
                            self.clock.elapsed(),
                            &Event::BackupJoined {
                                shard: server,
                                epoch: self.epoch,
                            },
                        );
                    } else {
                        self.primary = Some(server);
                    }
                }
                FailoverControl::Promoted {
                    server,
                    version,
                    replayed,
                } => {
                    if let Some((_, backup_flag, _)) = self.shards.get_mut(&server) {
                        *backup_flag = false;
                    }
                    self.primary = Some(server);
                    self.epoch += 1;
                    self.promotion_pending = None;
                    self.stats.promotions += 1;
                    self.sink.record(
                        self.clock.elapsed(),
                        &Event::ShardFailover {
                            shard: server,
                            version,
                            replayed,
                        },
                    );
                }
                FailoverControl::QueryPrimary => {
                    let answer = self
                        .primary
                        .and_then(|id| self.shards.get(&id))
                        .map(|(_, _, addr)| addr.clone());
                    if let Some(addr) = answer {
                        let epoch = self.epoch;
                        self.write_to(
                            conn,
                            &WireMessage::Failover(FailoverControl::Primary { addr, epoch }),
                        );
                    }
                }
                FailoverControl::BackupReady {
                    server,
                    version,
                    replayed,
                } => {
                    // The rejoin handshake itself ran shard-to-shard; this
                    // is the joiner reporting where the catch-up landed.
                    self.sink.record(
                        self.clock.elapsed(),
                        &Event::CatchUpComplete {
                            shard: server,
                            version,
                            replayed,
                        },
                    );
                }
                // Acks, verbs the scheduler sends rather than receives,
                // and the data-plane rejoin frames.
                FailoverControl::Ack { .. }
                | FailoverControl::Crash { .. }
                | FailoverControl::Promote { .. }
                | FailoverControl::Recover { .. }
                | FailoverControl::Primary { .. }
                | FailoverControl::JoinAsBackup { .. }
                | FailoverControl::SnapshotChunk { .. }
                | FailoverControl::CatchUp { .. } => {}
            },
            WireMessage::Heartbeat { worker } => {
                if from_shard {
                    if let Some(Peer::Shard { server, .. }) = self.peers.get(&conn) {
                        self.last_shard_beat.insert(*server, now);
                    }
                } else {
                    self.worker_beat(worker, now);
                }
            }
            WireMessage::Pull { worker } => {
                self.worker_beat(worker, now);
                self.core.on_pull(worker, now);
            }
            WireMessage::Notify { worker, pushes } => {
                self.worker_beat(worker, now);
                self.sink
                    .record(self.clock.elapsed(), &Event::Notify { worker });
                let w = worker.index();
                if w < self.per_worker.len() {
                    let missing = pushes.saturating_sub(self.per_worker[w] + 1);
                    if missing > 0 {
                        self.sink
                            .record(self.clock.elapsed(), &Event::NotifyLoss { worker, missing });
                    }
                    if let Ok(Some(deadline)) =
                        self.core.try_on_notify_reconciled(worker, pushes, now)
                    {
                        self.timers.push((deadline, worker));
                    }
                    self.per_worker[w] = self.per_worker[w].max(pushes);
                    let min = self.per_worker.iter().min().copied().unwrap_or(0);
                    while min > self.epochs {
                        self.epochs += 1;
                        let tuned = self.core.on_epoch_complete(now);
                        let hyper = self.core.hyperparams();
                        self.sink.record(
                            self.clock.elapsed(),
                            &Event::EpochTuned {
                                epoch: self.epochs,
                                abort_time: hyper.abort_time(),
                                abort_rate: hyper.abort_rate(),
                                estimated_gain: tuned.as_ref().map(|o| o.estimated_improvement),
                            },
                        );
                    }
                }
            }
            WireMessage::Check { worker } => self.on_check_frame(worker, now),
            // Data-plane and reply frames have no scheduler-side meaning;
            // tolerate them rather than dropping the connection.
            WireMessage::Push { .. }
            | WireMessage::RelayPush { .. }
            | WireMessage::PullReply { .. }
            | WireMessage::PushAck { .. }
            | WireMessage::Abort { .. }
            | WireMessage::Shutdown => {}
        }
    }

    fn handle_closed(&mut self, conn: usize) {
        self.writers.remove(&conn);
        match self.peers.remove(&conn) {
            Some(Peer::Worker(worker)) => {
                self.worker_conn.remove(&worker.index());
                let now = self.now_vt();
                let w = worker.index();
                if w < self.worker_dead.len()
                    && !self.worker_dead[w]
                    && matches!(self.core.try_mark_dead(worker, now), Ok(true))
                {
                    self.worker_dead[w] = true;
                    self.stats.workers_marked_dead += 1;
                    self.sink
                        .record(self.clock.elapsed(), &Event::WorkerCrashed { worker });
                }
            }
            Some(Peer::Shard { server, .. }) => {
                self.last_shard_beat.remove(&server);
                let was_backup = self
                    .shards
                    .get(&server)
                    .map(|(_, backup, _)| *backup)
                    .unwrap_or(false);
                if self.primary == Some(server) {
                    // A dying primary's socket closing is the fast
                    // detection path (kill -9 sends RST on the open
                    // connection). Its registration is kept so workers can
                    // still resolve *some* address until the successor's
                    // `Promoted` flips the advertised primary.
                    self.initiate_promotion();
                } else if self.promotion_pending == Some(server) {
                    // The promotion target died between `Promote` and
                    // `Promoted`: release the latch and retarget, or a
                    // healthy backup could never be promoted again.
                    self.shards.remove(&server);
                    self.promotion_pending = None;
                    self.initiate_promotion();
                } else if was_backup {
                    // A dead warm backup must not be a future promotion
                    // target.
                    self.shards.remove(&server);
                }
            }
            None => {}
        }
    }

    fn sweep_liveness(&mut self) {
        let now = self.now_vt();
        let timeout = SimDuration::from_micros(
            self.cfg
                .net
                .heartbeat_timeout
                .as_micros()
                .min(u64::MAX as u128) as u64,
        );
        for w in 0..self.cfg.workers {
            let Some(beat) = self.last_worker_beat[w] else {
                continue;
            };
            if !self.worker_dead[w] && now.saturating_since(beat) > timeout {
                let worker = WorkerId::new(w);
                if matches!(self.core.try_mark_dead(worker, now), Ok(true)) {
                    self.worker_dead[w] = true;
                    self.stats.workers_marked_dead += 1;
                    self.sink
                        .record(self.clock.elapsed(), &Event::WorkerCrashed { worker });
                }
            }
        }
        // Heartbeat-silence fallback for a primary whose socket did not
        // close visibly.
        if let Some(primary) = self.primary {
            if let Some(&beat) = self.last_shard_beat.get(&primary) {
                if now.saturating_since(beat) > timeout {
                    self.last_shard_beat.remove(&primary);
                    self.initiate_promotion();
                }
            }
        }
    }

    fn fire_timers(&mut self) {
        let now = self.now_vt();
        let mut i = 0;
        while i < self.timers.len() {
            if self.timers[i].0 <= now {
                let (deadline, worker) = self.timers.swap_remove(i);
                // Timer deadlines re-enter through the frame vocabulary.
                let _ = deadline;
                self.handle_frame_local(WireMessage::Check { worker }, deadline);
            } else {
                i += 1;
            }
        }
    }

    /// Frame dispatch for locally-generated frames (timer firings): same
    /// handler, no connection.
    fn handle_frame_local(&mut self, frame: WireMessage, deadline: VirtualTime) {
        if let WireMessage::Check { worker } = frame {
            self.on_check_frame(worker, deadline);
        }
    }

    fn total_pushes(&self) -> u64 {
        self.per_worker.iter().sum()
    }

    fn broadcast_shutdown(&mut self) {
        let conns: Vec<usize> = self.writers.keys().copied().collect();
        for conn in conns {
            self.write_to(conn, &WireMessage::Shutdown);
        }
    }
}

fn central_loop(
    cfg: &SchedulerConfig,
    clock: &WallElapsed,
    sink: &Arc<dyn EventSink<Duration>>,
    events_rx: &Receiver<ConnEvent>,
) -> SchedulerRunStats {
    let tuning = match cfg.scheme {
        SchemeKind::SpecSync { tuning, .. } => tuning,
        // Any non-SpecSync scheme keeps the scheduler as a pure history
        // recorder: speculation disabled.
        _ => TuningMode::Fixed {
            abort_time: SimDuration::ZERO,
            abort_rate: f64::MAX,
        },
    };
    let m = cfg.workers;
    let mut central = Central {
        cfg,
        clock,
        sink,
        core: Scheduler::new(m, tuning),
        writers: BTreeMap::new(),
        peers: BTreeMap::new(),
        worker_conn: BTreeMap::new(),
        shards: BTreeMap::new(),
        primary: None,
        epoch: 0,
        promotion_pending: None,
        timers: Vec::new(),
        per_worker: vec![0; m],
        epochs: 0,
        last_worker_beat: vec![None; m],
        worker_dead: vec![false; m],
        last_shard_beat: BTreeMap::new(),
        stats: SchedulerRunStats {
            aborts_issued: 0,
            promotions: 0,
            total_pushes: 0,
            workers_marked_dead: 0,
            completed: false,
        },
    };

    loop {
        central.fire_timers();
        central.sweep_liveness();
        if clock.elapsed() >= cfg.max_duration {
            break;
        }
        if let Some(target) = cfg.stop_after_pushes {
            if central.total_pushes() >= target {
                central.stats.completed = true;
                break;
            }
        }
        match events_rx.recv_timeout(cfg.net.tick) {
            Ok(ConnEvent::Opened { id, writer }) => {
                central.writers.insert(id, writer);
            }
            Ok(ConnEvent::Frame { id, frame }) => central.handle_frame(id, frame),
            Ok(ConnEvent::Closed { id }) => central.handle_closed(id),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    central.stats.total_pushes = central.total_pushes();
    central.broadcast_shutdown();
    central.stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::MessageSizes;
    use specsync_ps::{ParameterStore, PushPayload, ReplicatedStore};

    fn shard(id: u64, dim: usize) -> ShardServer {
        let store = ParameterStore::new(vec![0.0; dim], 2);
        let host = ShardHost::new(ReplicatedStore::from_store(
            store,
            ReplicatedStore::DEFAULT_JOURNAL_CAPACITY,
        ));
        ShardServer::bind(id, "127.0.0.1:0", host, NetConfig::default()).unwrap()
    }

    fn connect(addr: &str, cfg: &NetConfig) -> FrameConn {
        let seq = ConnSeq::new();
        FrameConn::connect_with_retries(addr, cfg, &ConnTarget::new("test", &seq, 0), |_| {})
            .unwrap()
    }

    #[test]
    fn shard_serves_pull_and_push_over_tcp() {
        let server = shard(0, 8);
        let addr = server.local_addr().to_string();
        let stop = server.stop_handle();
        let handle = std::thread::spawn(move || server.run().unwrap());

        let cfg = NetConfig::default();
        let mut conn = connect(&addr, &cfg);
        let w = WorkerId::new(0);
        let (reply, _, _) = conn
            .exchange(&WireMessage::Push {
                worker: w,
                payload: PushPayload::Dense(vec![1.0; 8]),
            })
            .unwrap();
        assert_eq!(
            reply,
            WireMessage::PushAck {
                version: 1,
                pushes_by_worker: 1
            }
        );
        let (reply, _, _) = conn.exchange(&WireMessage::Pull { worker: w }).unwrap();
        let WireMessage::PullReply { version, params } = reply else {
            panic!("want PullReply, got {reply:?}");
        };
        assert_eq!(version, 1);
        assert_eq!(params.len(), 8);
        drop(conn);

        stop.store(true, Ordering::SeqCst);
        let stats = handle.join().unwrap();
        assert_eq!(stats.pulls_served, 1);
        assert_eq!(stats.pushes_applied, 1);
        assert_eq!(stats.version, 1);
        assert!(stats.serving);
    }

    #[test]
    fn primary_relays_pushes_to_backup_before_applying() {
        let backup = shard(1, 4).as_backup();
        let backup_addr = backup.local_addr().to_string();
        let backup_stop = backup.stop_handle();
        let backup_handle = std::thread::spawn(move || backup.run().unwrap());

        let primary = shard(0, 4).with_backup_relay(&backup_addr);
        let primary_addr = primary.local_addr().to_string();
        let primary_stop = primary.stop_handle();
        let primary_handle = std::thread::spawn(move || primary.run().unwrap());

        let cfg = NetConfig::default();
        let mut conn = connect(&primary_addr, &cfg);
        let w = WorkerId::new(0);
        for i in 1..=3u64 {
            let (reply, _, _) = conn
                .exchange(&WireMessage::Push {
                    worker: w,
                    payload: PushPayload::Dense(vec![1.0; 4]),
                })
                .unwrap();
            assert_eq!(
                reply,
                WireMessage::PushAck {
                    version: i,
                    pushes_by_worker: i
                }
            );
        }
        // A pull against the backup is refused while it is not serving:
        // the connection just closes.
        let mut bconn = connect(&backup_addr, &cfg);
        bconn.write(&WireMessage::Pull { worker: w }).unwrap();
        assert!(bconn.recv().is_err());
        drop(conn);

        primary_stop.store(true, Ordering::SeqCst);
        backup_stop.store(true, Ordering::SeqCst);
        let pstats = primary_handle.join().unwrap();
        let bstats = backup_handle.join().unwrap();
        assert_eq!(pstats.relayed, 3);
        assert_eq!(pstats.version, 3);
        // The backup absorbed the same three pushes, in order.
        assert_eq!(bstats.pushes_applied, 3);
        assert_eq!(bstats.version, 3);
        assert!(!bstats.serving);
    }

    #[test]
    fn scheduler_answers_query_primary_and_promotes_on_close() {
        let sched = SchedulerServer::bind(
            "127.0.0.1:0",
            SchedulerConfig {
                workers: 1,
                stop_after_pushes: Some(1),
                max_duration: Duration::from_secs(20),
                net: NetConfig::builder()
                    .heartbeat_interval(Duration::from_millis(10))
                    .heartbeat_timeout(Duration::from_millis(100))
                    .try_build()
                    .unwrap(),
                ..SchedulerConfig::default()
            },
        )
        .unwrap();
        let sched_addr = sched.local_addr().to_string();
        let handle = std::thread::spawn(move || sched.run().unwrap());
        let cfg = NetConfig::default();

        // A fake primary registers, then a fake backup.
        let mut primary = connect(&sched_addr, &cfg);
        primary
            .write(&WireMessage::Failover(FailoverControl::Register {
                server: 0,
                backup: false,
                addr: "127.0.0.1:7000".into(),
            }))
            .unwrap();
        let mut backup = connect(&sched_addr, &cfg);
        backup
            .write(&WireMessage::Failover(FailoverControl::Register {
                server: 1,
                backup: true,
                addr: "127.0.0.1:7001".into(),
            }))
            .unwrap();

        // A worker asks where the primary is.
        let mut worker = connect(&sched_addr, &cfg);
        worker
            .write(&WireMessage::Failover(FailoverControl::QueryPrimary))
            .unwrap();
        let (answer, _) = worker.recv().unwrap();
        assert_eq!(
            answer,
            WireMessage::Failover(FailoverControl::Primary {
                addr: "127.0.0.1:7000".into(),
                epoch: 0
            })
        );

        // The primary dies: its connection closes, the scheduler sends
        // Promote to the backup, the backup answers Promoted.
        drop(primary);
        let (promote, _) = backup.recv().unwrap();
        assert_eq!(
            promote,
            WireMessage::Failover(FailoverControl::Promote { server: 1 })
        );
        backup
            .write(&WireMessage::Failover(FailoverControl::Promoted {
                server: 1,
                version: 42,
                replayed: 5,
            }))
            .unwrap();

        // The worker re-queries and sees the new primary at epoch 1.
        // (Poll until the Promoted frame has been processed.)
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            worker
                .write(&WireMessage::Failover(FailoverControl::QueryPrimary))
                .unwrap();
            let (answer, _) = worker.recv().unwrap();
            if answer
                == WireMessage::Failover(FailoverControl::Primary {
                    addr: "127.0.0.1:7001".into(),
                    epoch: 1,
                })
            {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "promotion never landed"
            );
        }

        // Tear down: one notified push reaches the stop target, and the
        // central loop broadcasts Shutdown and returns.
        drop(backup);
        drop(worker);
        let mut closer = connect(&sched_addr, &cfg);
        closer
            .write(&WireMessage::Notify {
                worker: WorkerId::new(0),
                pushes: 1,
            })
            .unwrap();
        let stats = handle.join().unwrap();
        assert_eq!(stats.promotions, 1);
        assert!(stats.completed);
    }

    #[test]
    fn fresh_shard_rejoins_over_the_wire_and_relays_live_pushes() {
        // A tiny chunk size forces the snapshot across several
        // SnapshotChunk frames.
        let store = ParameterStore::new(vec![0.0; 16], 2);
        let host = ShardHost::new(ReplicatedStore::from_store(
            store,
            ReplicatedStore::DEFAULT_JOURNAL_CAPACITY,
        ));
        let pcfg = NetConfig::builder().join_chunk_bytes(16).try_build().unwrap();
        let primary = ShardServer::bind(0, "127.0.0.1:0", host, pcfg).unwrap();
        let primary_addr = primary.local_addr().to_string();
        let primary_stop = primary.stop_handle();
        let primary_counters = primary.counters_handle();
        let primary_handle = std::thread::spawn(move || primary.run().unwrap());

        let cfg = NetConfig::default();
        let mut conn = connect(&primary_addr, &cfg);
        let w = WorkerId::new(0);
        for _ in 0..5 {
            conn.exchange(&WireMessage::Push {
                worker: w,
                payload: PushPayload::Dense(vec![1.0; 16]),
            })
            .unwrap();
        }

        // A fresh process provisions itself from the live primary.
        let store = ParameterStore::new(vec![0.0; 16], 2);
        let host = ShardHost::new(ReplicatedStore::from_store(
            store,
            ReplicatedStore::DEFAULT_JOURNAL_CAPACITY,
        ));
        let joiner = ShardServer::bind(2, "127.0.0.1:0", host, NetConfig::default())
            .unwrap()
            .as_backup()
            .join_via(&primary_addr);
        let joiner_stop = joiner.stop_handle();
        let joiner_handle = std::thread::spawn(move || joiner.run().unwrap());

        // Wait for the primary to adopt the joiner as its relay: the
        // journal tail (the 5 pushes above) is counted as relayed the
        // moment the handshake completes.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while primary_counters.relayed.load(Ordering::Relaxed) < 5 {
            assert!(
                std::time::Instant::now() < deadline,
                "rejoin handshake never completed"
            );
            std::thread::sleep(Duration::from_millis(2));
        }

        // Post-join pushes travel as live write-ahead relays down the
        // join connection before they are applied or acked, so each ack
        // below implies the backup already holds the push.
        for _ in 0..3 {
            conn.exchange(&WireMessage::Push {
                worker: w,
                payload: PushPayload::Dense(vec![1.0; 16]),
            })
            .unwrap();
        }
        drop(conn);

        primary_stop.store(true, Ordering::SeqCst);
        joiner_stop.store(true, Ordering::SeqCst);
        let pstats = primary_handle.join().unwrap();
        let bstats = joiner_handle.join().unwrap();
        assert_eq!(pstats.version, 8);
        assert_eq!(
            bstats.version, 8,
            "the joiner must end at the primary's exact version"
        );
        assert!(!bstats.serving);
    }

    #[test]
    fn promotion_retargets_when_the_chosen_backup_dies_mid_promotion() {
        let sched = SchedulerServer::bind(
            "127.0.0.1:0",
            SchedulerConfig {
                workers: 1,
                stop_after_pushes: Some(1),
                max_duration: Duration::from_secs(20),
                net: NetConfig::builder()
                    .heartbeat_interval(Duration::from_millis(10))
                    .heartbeat_timeout(Duration::from_millis(100))
                    .try_build()
                    .unwrap(),
                ..SchedulerConfig::default()
            },
        )
        .unwrap();
        let sched_addr = sched.local_addr().to_string();
        let handle = std::thread::spawn(move || sched.run().unwrap());
        let cfg = NetConfig::default();

        let mut primary = connect(&sched_addr, &cfg);
        primary
            .write(&WireMessage::Failover(FailoverControl::Register {
                server: 0,
                backup: false,
                addr: "127.0.0.1:7000".into(),
            }))
            .unwrap();
        let mut first = connect(&sched_addr, &cfg);
        first
            .write(&WireMessage::Failover(FailoverControl::Register {
                server: 1,
                backup: true,
                addr: "127.0.0.1:7001".into(),
            }))
            .unwrap();
        let mut second = connect(&sched_addr, &cfg);
        second
            .write(&WireMessage::Failover(FailoverControl::Register {
                server: 2,
                backup: true,
                addr: "127.0.0.1:7002".into(),
            }))
            .unwrap();
        // Let all three registrations land before the crash.
        std::thread::sleep(Duration::from_millis(50));

        // The primary dies; the scheduler targets the first backup.
        drop(primary);
        let (promote, _) = first.recv().unwrap();
        assert_eq!(
            promote,
            WireMessage::Failover(FailoverControl::Promote { server: 1 })
        );

        // The chosen backup dies *without* replying Promoted — exactly
        // the window that used to leave the pending latch stuck forever.
        drop(first);
        let (promote, _) = second.recv().unwrap();
        assert_eq!(
            promote,
            WireMessage::Failover(FailoverControl::Promote { server: 2 })
        );
        second
            .write(&WireMessage::Failover(FailoverControl::Promoted {
                server: 2,
                version: 7,
                replayed: 0,
            }))
            .unwrap();
        drop(second);

        let mut closer = connect(&sched_addr, &cfg);
        closer
            .write(&WireMessage::Notify {
                worker: WorkerId::new(0),
                pushes: 1,
            })
            .unwrap();
        let stats = handle.join().unwrap();
        assert_eq!(stats.promotions, 1);
        assert!(stats.completed);
    }

    #[test]
    fn rejoined_backup_is_armed_for_the_next_promotion() {
        let sched = SchedulerServer::bind(
            "127.0.0.1:0",
            SchedulerConfig {
                workers: 1,
                stop_after_pushes: Some(1),
                max_duration: Duration::from_secs(20),
                net: NetConfig::builder()
                    .heartbeat_interval(Duration::from_millis(10))
                    .heartbeat_timeout(Duration::from_millis(100))
                    .try_build()
                    .unwrap(),
                ..SchedulerConfig::default()
            },
        )
        .unwrap();
        let sched_addr = sched.local_addr().to_string();
        let handle = std::thread::spawn(move || sched.run().unwrap());
        let cfg = NetConfig::default();

        let mut primary = connect(&sched_addr, &cfg);
        primary
            .write(&WireMessage::Failover(FailoverControl::Register {
                server: 0,
                backup: false,
                addr: "127.0.0.1:7000".into(),
            }))
            .unwrap();
        let mut first = connect(&sched_addr, &cfg);
        first
            .write(&WireMessage::Failover(FailoverControl::Register {
                server: 1,
                backup: true,
                addr: "127.0.0.1:7001".into(),
            }))
            .unwrap();
        std::thread::sleep(Duration::from_millis(50));

        // First crash: the original backup takes over.
        drop(primary);
        let (promote, _) = first.recv().unwrap();
        assert_eq!(
            promote,
            WireMessage::Failover(FailoverControl::Promote { server: 1 })
        );
        first
            .write(&WireMessage::Failover(FailoverControl::Promoted {
                server: 1,
                version: 5,
                replayed: 5,
            }))
            .unwrap();

        // A re-provisioned shard registers as the new warm backup and
        // reports its catch-up, re-arming the scheduler.
        let mut rejoiner = connect(&sched_addr, &cfg);
        rejoiner
            .write(&WireMessage::Failover(FailoverControl::Register {
                server: 2,
                backup: true,
                addr: "127.0.0.1:7002".into(),
            }))
            .unwrap();
        rejoiner
            .write(&WireMessage::Failover(FailoverControl::BackupReady {
                server: 2,
                version: 5,
                replayed: 0,
            }))
            .unwrap();
        std::thread::sleep(Duration::from_millis(50));

        // Second crash: the *rejoined* backup is promoted.
        drop(first);
        let (promote, _) = rejoiner.recv().unwrap();
        assert_eq!(
            promote,
            WireMessage::Failover(FailoverControl::Promote { server: 2 })
        );
        rejoiner
            .write(&WireMessage::Failover(FailoverControl::Promoted {
                server: 2,
                version: 9,
                replayed: 4,
            }))
            .unwrap();
        drop(rejoiner);

        let mut closer = connect(&sched_addr, &cfg);
        closer
            .write(&WireMessage::Notify {
                worker: WorkerId::new(0),
                pushes: 1,
            })
            .unwrap();
        let stats = handle.join().unwrap();
        assert_eq!(stats.promotions, 2);
        assert!(stats.completed);
    }

    #[test]
    fn message_sizes_reexport_is_reachable() {
        // Guard the consolidated location: transfer accounting now lives
        // beside the wire vocabulary.
        let sizes = MessageSizes::for_model(1_000);
        assert_eq!(sizes.pull_bytes, 4_000);
    }
}
