//! The binary frame codec: how a [`WireMessage`] crosses a socket.
//!
//! The format follows the [`StoreCheckpoint`](specsync_ps::StoreCheckpoint)
//! codec conventions — versioned, checksummed, bounds-checked, with every
//! field in a fixed order:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "SSNF"
//! 4       4     format (u32 LE, currently 1)
//! 8       4     payload length (u32 LE)
//! 12      8     FNV-1a checksum of the payload (u64 LE)
//! 20      n     payload: tag byte, then the variant's fields
//! ```
//!
//! Integers are little-endian; floats are raw IEEE-754 bits (bit-exact
//! round-trip, no text formatting); slices and strings are length-prefixed.
//! Decoding demands an exact fit — trailing bytes are as fatal as missing
//! ones — so any single flipped byte in a frame is rejected (magic, format,
//! length and checksum cover the header; the checksum covers the payload).

use std::fmt;
use std::io::{self, Read, Write};
use std::sync::Arc;

use specsync_ps::PushPayload;
use specsync_simnet::WorkerId;
use specsync_tensor::SparseGrad;

use crate::wire::{FailoverControl, WireMessage};

/// Frame magic: `SSNF`, SpecSync Net Frame.
pub const MAGIC: [u8; 4] = *b"SSNF";
/// Current frame format version.
pub const FORMAT: u32 = 1;
/// Bytes before the payload: magic, format, length, checksum.
pub const HEADER_LEN: usize = 20;
/// Upper bound on a payload a peer may ask us to buffer (256 MiB — far
/// above any model this repo trains, far below a hostile length field).
pub const PAYLOAD_LIMIT: usize = 256 << 20;
/// Upper bound on a sparse gradient's declared dimension: the dimension
/// of the largest dense gradient a frame can carry (`PAYLOAD_LIMIT` / 4
/// bytes per f32). `dim` sizes decoder-side scratch without contributing
/// bytes to the payload, so the usual remaining-bytes bound on length
/// prefixes cannot cover it.
pub const MAX_SPARSE_DIM: u64 = (PAYLOAD_LIMIT / 4) as u64;

const TAG_PULL: u8 = 0;
const TAG_PULL_REPLY: u8 = 1;
const TAG_PUSH: u8 = 2;
const TAG_PUSH_ACK: u8 = 3;
const TAG_NOTIFY: u8 = 4;
const TAG_CHECK: u8 = 5;
const TAG_ABORT: u8 = 6;
const TAG_HEARTBEAT: u8 = 7;
const TAG_FAILOVER: u8 = 8;
const TAG_SHUTDOWN: u8 = 9;
const TAG_RELAY_PUSH: u8 = 10;

const FC_CRASH: u8 = 0;
const FC_PROMOTE: u8 = 1;
const FC_PROMOTED: u8 = 2;
const FC_RECOVER: u8 = 3;
const FC_ACK: u8 = 4;
const FC_REGISTER: u8 = 5;
const FC_QUERY_PRIMARY: u8 = 6;
const FC_PRIMARY: u8 = 7;
const FC_JOIN_AS_BACKUP: u8 = 8;
const FC_SNAPSHOT_CHUNK: u8 = 9;
const FC_CATCH_UP: u8 = 10;
const FC_BACKUP_READY: u8 = 11;

const PAYLOAD_DENSE: u8 = 0;
const PAYLOAD_SPARSE: u8 = 1;

/// Why a frame failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The first four bytes are not `SSNF`.
    BadMagic,
    /// The format version is not one this build reads.
    UnsupportedFormat {
        /// The version found in the header.
        found: u32,
    },
    /// The buffer ended before the advertised payload did.
    Truncated,
    /// The payload does not hash to the header checksum.
    ChecksumMismatch,
    /// Structurally invalid payload (bad tag, bad length, bad value).
    Malformed(&'static str),
    /// The header advertises a payload beyond [`PAYLOAD_LIMIT`].
    TooLarge {
        /// The advertised payload length.
        len: u64,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadMagic => write!(f, "bad frame magic (want SSNF)"),
            FrameError::UnsupportedFormat { found } => {
                write!(
                    f,
                    "unsupported frame format {found} (this build reads {FORMAT})"
                )
            }
            FrameError::Truncated => write!(f, "truncated frame"),
            FrameError::ChecksumMismatch => write!(f, "frame checksum mismatch"),
            FrameError::Malformed(what) => write!(f, "malformed frame: {what}"),
            FrameError::TooLarge { len } => {
                write!(
                    f,
                    "frame payload of {len} bytes exceeds the {PAYLOAD_LIMIT}-byte limit"
                )
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// FNV-1a over `bytes` — the same checksum the checkpoint codec uses.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f32(out: &mut Vec<u8>, v: f32) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_f32_slice(out: &mut Vec<u8>, vs: &[f32]) {
    put_u64(out, vs.len() as u64);
    out.reserve(vs.len() * 4);
    for &v in vs {
        put_f32(out, v);
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u64(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

fn put_worker(out: &mut Vec<u8>, w: WorkerId) {
    put_u64(out, w.index() as u64);
}

fn put_push_payload(out: &mut Vec<u8>, payload: &PushPayload) {
    match payload {
        PushPayload::Dense(grad) => {
            out.push(PAYLOAD_DENSE);
            put_f32_slice(out, grad);
        }
        PushPayload::Sparse(grad) => {
            out.push(PAYLOAD_SPARSE);
            put_u64(out, grad.dim() as u64);
            put_u64(out, grad.nnz() as u64);
            for (index, value) in grad.iter() {
                put_u64(out, index as u64);
                put_f32(out, value);
            }
        }
    }
}

fn encode_payload(msg: &WireMessage, out: &mut Vec<u8>) {
    match msg {
        WireMessage::Pull { worker } => {
            out.push(TAG_PULL);
            put_worker(out, *worker);
        }
        WireMessage::PullReply { version, params } => {
            out.push(TAG_PULL_REPLY);
            put_u64(out, *version);
            put_f32_slice(out, params);
        }
        WireMessage::Push { worker, payload } => {
            out.push(TAG_PUSH);
            put_worker(out, *worker);
            put_push_payload(out, payload);
        }
        WireMessage::RelayPush {
            seq,
            worker,
            lr,
            payload,
        } => {
            out.push(TAG_RELAY_PUSH);
            put_u64(out, *seq);
            put_worker(out, *worker);
            put_f32(out, *lr);
            put_push_payload(out, payload);
        }
        WireMessage::PushAck {
            version,
            pushes_by_worker,
        } => {
            out.push(TAG_PUSH_ACK);
            put_u64(out, *version);
            put_u64(out, *pushes_by_worker);
        }
        WireMessage::Notify { worker, pushes } => {
            out.push(TAG_NOTIFY);
            put_worker(out, *worker);
            put_u64(out, *pushes);
        }
        WireMessage::Check { worker } => {
            out.push(TAG_CHECK);
            put_worker(out, *worker);
        }
        WireMessage::Abort { worker } => {
            out.push(TAG_ABORT);
            put_worker(out, *worker);
        }
        WireMessage::Heartbeat { worker } => {
            out.push(TAG_HEARTBEAT);
            put_worker(out, *worker);
        }
        WireMessage::Failover(control) => {
            out.push(TAG_FAILOVER);
            match control {
                FailoverControl::Crash { server } => {
                    out.push(FC_CRASH);
                    put_u64(out, *server);
                }
                FailoverControl::Promote { server } => {
                    out.push(FC_PROMOTE);
                    put_u64(out, *server);
                }
                FailoverControl::Promoted {
                    server,
                    version,
                    replayed,
                } => {
                    out.push(FC_PROMOTED);
                    put_u64(out, *server);
                    put_u64(out, *version);
                    put_u64(out, *replayed);
                }
                FailoverControl::Recover { server } => {
                    out.push(FC_RECOVER);
                    put_u64(out, *server);
                }
                FailoverControl::Ack { server } => {
                    out.push(FC_ACK);
                    put_u64(out, *server);
                }
                FailoverControl::Register {
                    server,
                    backup,
                    addr,
                } => {
                    out.push(FC_REGISTER);
                    put_u64(out, *server);
                    out.push(u8::from(*backup));
                    put_str(out, addr);
                }
                FailoverControl::QueryPrimary => {
                    out.push(FC_QUERY_PRIMARY);
                }
                FailoverControl::Primary { addr, epoch } => {
                    out.push(FC_PRIMARY);
                    put_str(out, addr);
                    put_u64(out, *epoch);
                }
                FailoverControl::JoinAsBackup { server, addr } => {
                    out.push(FC_JOIN_AS_BACKUP);
                    put_u64(out, *server);
                    put_str(out, addr);
                }
                FailoverControl::SnapshotChunk { index, total, data } => {
                    out.push(FC_SNAPSHOT_CHUNK);
                    put_u64(out, *index);
                    put_u64(out, *total);
                    put_bytes(out, data);
                }
                FailoverControl::CatchUp { entries, through } => {
                    out.push(FC_CATCH_UP);
                    put_u64(out, *entries);
                    put_u64(out, *through);
                }
                FailoverControl::BackupReady {
                    server,
                    version,
                    replayed,
                } => {
                    out.push(FC_BACKUP_READY);
                    put_u64(out, *server);
                    put_u64(out, *version);
                    put_u64(out, *replayed);
                }
            }
        }
        WireMessage::Shutdown => {
            out.push(TAG_SHUTDOWN);
        }
    }
}

/// Encodes one message as a complete frame (header + payload).
///
/// # Errors
///
/// [`FrameError::TooLarge`] when the payload exceeds [`PAYLOAD_LIMIT`]:
/// every receiver would reject such a frame anyway, and a payload past
/// `u32::MAX` would silently truncate the length field and corrupt the
/// stream, so the sender refuses to put it on the wire at all.
pub fn encode_frame(msg: &WireMessage) -> Result<Vec<u8>, FrameError> {
    let mut payload = Vec::with_capacity(64);
    encode_payload(msg, &mut payload);
    if payload.len() > PAYLOAD_LIMIT {
        return Err(FrameError::TooLarge {
            len: payload.len() as u64,
        });
    }
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    put_u32(&mut out, FORMAT);
    put_u32(&mut out, payload.len() as u32);
    put_u64(&mut out, fnv1a(&payload));
    out.extend_from_slice(&payload);
    Ok(out)
}

/// Bounds-checked sequential reader over a payload.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        let end = self.pos.checked_add(n).ok_or(FrameError::Truncated)?;
        if end > self.buf.len() {
            return Err(FrameError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        let s = self.take(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }

    fn f32(&mut self) -> Result<f32, FrameError> {
        let s = self.take(4)?;
        let mut b = [0u8; 4];
        b.copy_from_slice(s);
        Ok(f32::from_bits(u32::from_le_bytes(b)))
    }

    /// A length prefix, bounds-checked against `per_item` bytes of
    /// remaining buffer so a hostile length cannot force a huge
    /// pre-allocation.
    fn len_prefix(&mut self, per_item: usize) -> Result<usize, FrameError> {
        let n = self.u64()?;
        let remaining = (self.buf.len() - self.pos) as u64;
        if n.checked_mul(per_item as u64).is_none_or(|b| b > remaining) {
            return Err(FrameError::Malformed("length prefix exceeds payload"));
        }
        Ok(n as usize)
    }

    fn f32_slice(&mut self) -> Result<Vec<f32>, FrameError> {
        let n = self.len_prefix(4)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.f32()?);
        }
        Ok(out)
    }

    fn string(&mut self) -> Result<String, FrameError> {
        let n = self.len_prefix(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| FrameError::Malformed("non-UTF-8 string"))
    }

    fn bytes(&mut self) -> Result<Vec<u8>, FrameError> {
        let n = self.len_prefix(1)?;
        Ok(self.take(n)?.to_vec())
    }

    fn bool(&mut self) -> Result<bool, FrameError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(FrameError::Malformed("bad bool")),
        }
    }

    fn worker(&mut self) -> Result<WorkerId, FrameError> {
        let idx = self.u64()?;
        if idx > u32::MAX as u64 {
            return Err(FrameError::Malformed("worker index out of range"));
        }
        Ok(WorkerId::new(idx as usize))
    }

    fn finish(self) -> Result<(), FrameError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(FrameError::Malformed("trailing bytes after payload"))
        }
    }
}

fn read_push_payload(r: &mut Reader<'_>) -> Result<PushPayload, FrameError> {
    match r.u8()? {
        PAYLOAD_DENSE => Ok(PushPayload::Dense(r.f32_slice()?)),
        PAYLOAD_SPARSE => {
            let dim = r.u64()?;
            // `SparseGrad::reset` allocates per-dimension scratch,
            // so a hostile dim would force a huge allocation even
            // with zero entries on the wire: cap it like a length.
            if dim > MAX_SPARSE_DIM {
                return Err(FrameError::Malformed("sparse dim exceeds limit"));
            }
            let nnz = r.len_prefix(12)?;
            let mut grad = SparseGrad::new();
            grad.reset(dim as usize);
            for _ in 0..nnz {
                let index = r.u64()?;
                let value = r.f32()?;
                if index >= dim {
                    return Err(FrameError::Malformed("sparse index beyond dim"));
                }
                grad.add(index as usize, value);
            }
            grad.finish();
            Ok(PushPayload::Sparse(grad))
        }
        _ => Err(FrameError::Malformed("bad push payload kind")),
    }
}

fn decode_payload(payload: &[u8]) -> Result<WireMessage, FrameError> {
    let mut r = Reader::new(payload);
    let msg = match r.u8()? {
        TAG_PULL => WireMessage::Pull {
            worker: r.worker()?,
        },
        TAG_PULL_REPLY => {
            let version = r.u64()?;
            let params: Arc<[f32]> = Arc::from(r.f32_slice()?);
            WireMessage::PullReply { version, params }
        }
        TAG_PUSH => {
            let worker = r.worker()?;
            let payload = read_push_payload(&mut r)?;
            WireMessage::Push { worker, payload }
        }
        TAG_RELAY_PUSH => {
            let seq = r.u64()?;
            let worker = r.worker()?;
            let lr = r.f32()?;
            let payload = read_push_payload(&mut r)?;
            WireMessage::RelayPush {
                seq,
                worker,
                lr,
                payload,
            }
        }
        TAG_PUSH_ACK => WireMessage::PushAck {
            version: r.u64()?,
            pushes_by_worker: r.u64()?,
        },
        TAG_NOTIFY => WireMessage::Notify {
            worker: r.worker()?,
            pushes: r.u64()?,
        },
        TAG_CHECK => WireMessage::Check {
            worker: r.worker()?,
        },
        TAG_ABORT => WireMessage::Abort {
            worker: r.worker()?,
        },
        TAG_HEARTBEAT => WireMessage::Heartbeat {
            worker: r.worker()?,
        },
        TAG_FAILOVER => {
            let control = match r.u8()? {
                FC_CRASH => FailoverControl::Crash { server: r.u64()? },
                FC_PROMOTE => FailoverControl::Promote { server: r.u64()? },
                FC_PROMOTED => FailoverControl::Promoted {
                    server: r.u64()?,
                    version: r.u64()?,
                    replayed: r.u64()?,
                },
                FC_RECOVER => FailoverControl::Recover { server: r.u64()? },
                FC_ACK => FailoverControl::Ack { server: r.u64()? },
                FC_REGISTER => FailoverControl::Register {
                    server: r.u64()?,
                    backup: r.bool()?,
                    addr: r.string()?,
                },
                FC_QUERY_PRIMARY => FailoverControl::QueryPrimary,
                FC_PRIMARY => FailoverControl::Primary {
                    addr: r.string()?,
                    epoch: r.u64()?,
                },
                FC_JOIN_AS_BACKUP => FailoverControl::JoinAsBackup {
                    server: r.u64()?,
                    addr: r.string()?,
                },
                FC_SNAPSHOT_CHUNK => {
                    let index = r.u64()?;
                    let total = r.u64()?;
                    if index >= total {
                        return Err(FrameError::Malformed("snapshot chunk index beyond total"));
                    }
                    FailoverControl::SnapshotChunk {
                        index,
                        total,
                        data: r.bytes()?,
                    }
                }
                FC_CATCH_UP => FailoverControl::CatchUp {
                    entries: r.u64()?,
                    through: r.u64()?,
                },
                FC_BACKUP_READY => FailoverControl::BackupReady {
                    server: r.u64()?,
                    version: r.u64()?,
                    replayed: r.u64()?,
                },
                _ => return Err(FrameError::Malformed("bad failover sub-tag")),
            };
            WireMessage::Failover(control)
        }
        TAG_SHUTDOWN => WireMessage::Shutdown,
        _ => return Err(FrameError::Malformed("bad frame tag")),
    };
    r.finish()?;
    Ok(msg)
}

/// Decodes one complete frame. The buffer must hold exactly one frame —
/// missing bytes report [`FrameError::Truncated`], extra bytes
/// [`FrameError::Malformed`].
pub fn decode_frame(buf: &[u8]) -> Result<WireMessage, FrameError> {
    if buf.len() < HEADER_LEN {
        // A short buffer that cannot even disprove the magic is truncated;
        // one that can is reported as whatever the header says first.
        if buf.len() >= 4 && buf[..4] != MAGIC {
            return Err(FrameError::BadMagic);
        }
        return Err(FrameError::Truncated);
    }
    if buf[..4] != MAGIC {
        return Err(FrameError::BadMagic);
    }
    let mut w = [0u8; 4];
    w.copy_from_slice(&buf[4..8]);
    let format = u32::from_le_bytes(w);
    if format != FORMAT {
        return Err(FrameError::UnsupportedFormat { found: format });
    }
    w.copy_from_slice(&buf[8..12]);
    let payload_len = u32::from_le_bytes(w) as usize;
    if payload_len > PAYLOAD_LIMIT {
        return Err(FrameError::TooLarge {
            len: payload_len as u64,
        });
    }
    let mut c = [0u8; 8];
    c.copy_from_slice(&buf[12..20]);
    let checksum = u64::from_le_bytes(c);
    let end = HEADER_LEN + payload_len;
    if buf.len() < end {
        return Err(FrameError::Truncated);
    }
    if buf.len() > end {
        return Err(FrameError::Malformed("trailing bytes after frame"));
    }
    let payload = &buf[HEADER_LEN..end];
    if fnv1a(payload) != checksum {
        return Err(FrameError::ChecksumMismatch);
    }
    decode_payload(payload)
}

/// Writes one frame to a stream, returning the bytes written. An
/// unencodable message (payload over [`PAYLOAD_LIMIT`]) surfaces as
/// [`io::ErrorKind::InvalidInput`] with nothing written.
pub fn write_frame(w: &mut dyn Write, msg: &WireMessage) -> io::Result<usize> {
    let bytes = encode_frame(msg).map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
    w.write_all(&bytes)?;
    Ok(bytes.len())
}

/// Reads one frame from a stream, returning the message and the bytes
/// consumed. An EOF before the first header byte reports
/// [`ReadOutcome::Closed`]; any later truncation is an error.
pub fn read_frame(r: &mut dyn Read) -> Result<ReadOutcome, FrameReadError> {
    let mut header = [0u8; HEADER_LEN];
    // Distinguish a clean close (no bytes at all) from a mid-frame cut.
    let mut got = 0usize;
    while got < HEADER_LEN {
        match r.read(&mut header[got..]) {
            Ok(0) => {
                if got == 0 {
                    return Ok(ReadOutcome::Closed);
                }
                return Err(FrameReadError::Frame(FrameError::Truncated));
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameReadError::Io(e)),
        }
    }
    if header[..4] != MAGIC {
        return Err(FrameReadError::Frame(FrameError::BadMagic));
    }
    let mut w4 = [0u8; 4];
    w4.copy_from_slice(&header[4..8]);
    let format = u32::from_le_bytes(w4);
    if format != FORMAT {
        return Err(FrameReadError::Frame(FrameError::UnsupportedFormat {
            found: format,
        }));
    }
    w4.copy_from_slice(&header[8..12]);
    let payload_len = u32::from_le_bytes(w4) as usize;
    if payload_len > PAYLOAD_LIMIT {
        return Err(FrameReadError::Frame(FrameError::TooLarge {
            len: payload_len as u64,
        }));
    }
    let mut frame = vec![0u8; HEADER_LEN + payload_len];
    frame[..HEADER_LEN].copy_from_slice(&header);
    if let Err(e) = r.read_exact(&mut frame[HEADER_LEN..]) {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            return Err(FrameReadError::Frame(FrameError::Truncated));
        }
        return Err(FrameReadError::Io(e));
    }
    match decode_frame(&frame) {
        Ok(msg) => Ok(ReadOutcome::Frame(msg, frame.len())),
        Err(e) => Err(FrameReadError::Frame(e)),
    }
}

/// Result of reading from a framed stream.
#[derive(Debug)]
pub enum ReadOutcome {
    /// One complete frame, with the bytes it occupied on the wire.
    Frame(WireMessage, usize),
    /// The peer closed the stream cleanly between frames.
    Closed,
}

/// Why reading a frame from a stream failed.
#[derive(Debug)]
pub enum FrameReadError {
    /// The stream itself failed.
    Io(io::Error),
    /// The bytes arrived but do not form a valid frame.
    Frame(FrameError),
}

impl fmt::Display for FrameReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameReadError::Io(e) => write!(f, "frame read i/o error: {e}"),
            FrameReadError::Frame(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FrameReadError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frames() -> Vec<WireMessage> {
        let w = WorkerId::new(2);
        let mut sparse = SparseGrad::new();
        sparse.reset(10);
        sparse.add(1, 0.5);
        sparse.add(7, -2.25);
        sparse.finish();
        vec![
            WireMessage::Pull { worker: w },
            WireMessage::PullReply {
                version: 42,
                params: Arc::from(vec![1.0f32, -0.5, 3.25].as_slice()),
            },
            WireMessage::Push {
                worker: w,
                payload: PushPayload::Dense(vec![0.25, -1.0]),
            },
            WireMessage::Push {
                worker: w,
                payload: PushPayload::Sparse(sparse),
            },
            WireMessage::PushAck {
                version: 43,
                pushes_by_worker: 7,
            },
            WireMessage::Notify {
                worker: w,
                pushes: 12,
            },
            WireMessage::Check { worker: w },
            WireMessage::Abort { worker: w },
            WireMessage::Heartbeat { worker: w },
            WireMessage::Failover(FailoverControl::Crash { server: 0 }),
            WireMessage::Failover(FailoverControl::Promote { server: 0 }),
            WireMessage::Failover(FailoverControl::Promoted {
                server: 0,
                version: 99,
                replayed: 3,
            }),
            WireMessage::Failover(FailoverControl::Recover { server: 1 }),
            WireMessage::Failover(FailoverControl::Ack { server: 1 }),
            WireMessage::Failover(FailoverControl::Register {
                server: 0,
                backup: true,
                addr: "127.0.0.1:4242".to_string(),
            }),
            WireMessage::Failover(FailoverControl::QueryPrimary),
            WireMessage::Failover(FailoverControl::Primary {
                addr: "127.0.0.1:4243".to_string(),
                epoch: 2,
            }),
            WireMessage::Failover(FailoverControl::JoinAsBackup {
                server: 2,
                addr: "127.0.0.1:4244".to_string(),
            }),
            WireMessage::Failover(FailoverControl::SnapshotChunk {
                index: 1,
                total: 3,
                data: vec![0xde, 0xad, 0xbe, 0xef, 0x00],
            }),
            WireMessage::Failover(FailoverControl::CatchUp {
                entries: 5,
                through: 104,
            }),
            WireMessage::Failover(FailoverControl::BackupReady {
                server: 2,
                version: 104,
                replayed: 5,
            }),
            {
                let mut sparse = SparseGrad::new();
                sparse.reset(6);
                sparse.add(0, 1.5);
                sparse.add(5, -0.75);
                sparse.finish();
                WireMessage::RelayPush {
                    seq: 44,
                    worker: w,
                    lr: 0.05,
                    payload: PushPayload::Sparse(sparse),
                }
            },
            WireMessage::RelayPush {
                seq: 45,
                worker: w,
                lr: 0.05,
                payload: PushPayload::Dense(vec![0.5, -0.25, 0.125]),
            },
            WireMessage::Shutdown,
        ]
    }

    #[test]
    fn hostile_snapshot_chunk_index_is_malformed() {
        let msg = WireMessage::Failover(FailoverControl::SnapshotChunk {
            index: 0,
            total: 2,
            data: vec![7; 4],
        });
        let mut bytes = encode_frame(&msg).unwrap();
        // The index field sits after header(20) + tag(1) + sub-tag(1) = 22;
        // forge an index at/above total and fix the checksum so only the
        // semantic check can reject it.
        bytes[22..30].copy_from_slice(&2u64.to_le_bytes());
        let sum = fnv1a(&bytes[HEADER_LEN..]);
        bytes[12..20].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            decode_frame(&bytes),
            Err(FrameError::Malformed("snapshot chunk index beyond total"))
        );
    }

    #[test]
    fn every_variant_round_trips() {
        for msg in sample_frames() {
            let bytes = encode_frame(&msg).unwrap();
            let back = decode_frame(&bytes).unwrap_or_else(|e| panic!("{msg:?}: {e}"));
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn every_flipped_byte_is_rejected() {
        for msg in sample_frames() {
            let bytes = encode_frame(&msg).unwrap();
            for i in 0..bytes.len() {
                let mut corrupt = bytes.clone();
                corrupt[i] ^= 0x01;
                assert!(
                    decode_frame(&corrupt).is_err(),
                    "flipping byte {i} of {msg:?} must not decode"
                );
            }
        }
    }

    #[test]
    fn truncation_and_extension_are_rejected() {
        let bytes = encode_frame(&WireMessage::Notify {
            worker: WorkerId::new(1),
            pushes: 5,
        })
        .unwrap();
        for cut in 0..bytes.len() {
            assert!(
                decode_frame(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes"
            );
        }
        let mut extended = bytes.clone();
        extended.push(0);
        assert_eq!(
            decode_frame(&extended),
            Err(FrameError::Malformed("trailing bytes after frame"))
        );
    }

    #[test]
    fn stream_round_trip_and_clean_close() {
        let mut buf = Vec::new();
        let frames = sample_frames();
        for msg in &frames {
            write_frame(&mut buf, msg).unwrap();
        }
        let mut cursor = io::Cursor::new(buf);
        for msg in &frames {
            match read_frame(&mut cursor).unwrap() {
                ReadOutcome::Frame(got, n) => {
                    assert_eq!(&got, msg);
                    assert!(n >= HEADER_LEN);
                }
                ReadOutcome::Closed => panic!("stream closed early"),
            }
        }
        assert!(matches!(
            read_frame(&mut cursor).unwrap(),
            ReadOutcome::Closed
        ));
    }

    #[test]
    fn stream_truncated_mid_frame_errors() {
        let bytes = encode_frame(&WireMessage::PullReply {
            version: 7,
            params: Arc::from(vec![1.0f32; 16].as_slice()),
        })
        .unwrap();
        for cut in 1..bytes.len() {
            let mut cursor = io::Cursor::new(bytes[..cut].to_vec());
            assert!(
                matches!(
                    read_frame(&mut cursor),
                    Err(FrameReadError::Frame(FrameError::Truncated))
                ),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn hostile_length_is_bounded() {
        let mut bytes = encode_frame(&WireMessage::Shutdown).unwrap();
        // Forge a payload length far beyond the limit.
        bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_frame(&bytes),
            Err(FrameError::TooLarge { .. })
        ));
    }

    #[test]
    fn sparse_index_beyond_dim_is_malformed() {
        let mut sparse = SparseGrad::new();
        sparse.reset(4);
        sparse.add(3, 1.0);
        sparse.finish();
        let msg = WireMessage::Push {
            worker: WorkerId::new(0),
            payload: PushPayload::Sparse(sparse),
        };
        let mut bytes = encode_frame(&msg).unwrap();
        // The index field sits after header(20) + tag(1) + worker(8) +
        // kind(1) + dim(8) + nnz(8) = 46; overwrite it with dim.
        bytes[46..54].copy_from_slice(&4u64.to_le_bytes());
        // Fix the checksum so only the semantic check can reject it.
        let sum = fnv1a(&bytes[HEADER_LEN..]);
        bytes[12..20].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            decode_frame(&bytes),
            Err(FrameError::Malformed("sparse index beyond dim"))
        );
    }

    #[test]
    fn hostile_sparse_dim_is_bounded() {
        let mut sparse = SparseGrad::new();
        sparse.reset(4);
        sparse.add(1, 1.0);
        sparse.finish();
        let msg = WireMessage::Push {
            worker: WorkerId::new(0),
            payload: PushPayload::Sparse(sparse),
        };
        let mut bytes = encode_frame(&msg).unwrap();
        // The dim field sits after header(20) + tag(1) + worker(8) +
        // kind(1) = 30; forge a multi-terabyte dimension on an otherwise
        // tiny frame and fix the checksum, so only the dim bound can
        // reject it before the decoder allocates.
        bytes[30..38].copy_from_slice(&(1u64 << 40).to_le_bytes());
        let sum = fnv1a(&bytes[HEADER_LEN..]);
        bytes[12..20].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            decode_frame(&bytes),
            Err(FrameError::Malformed("sparse dim exceeds limit"))
        );
    }

    #[test]
    fn oversized_payload_refuses_to_encode() {
        // One f32 past the largest dense gradient a frame can carry.
        let n = PAYLOAD_LIMIT / 4 + 1;
        let msg = WireMessage::PullReply {
            version: 1,
            params: Arc::from(vec![0.0f32; n].as_slice()),
        };
        assert!(matches!(
            encode_frame(&msg),
            Err(FrameError::TooLarge { .. })
        ));
        let mut sink = Vec::new();
        let err = write_frame(&mut sink, &msg).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(sink.is_empty(), "nothing may reach the wire");
    }
}
