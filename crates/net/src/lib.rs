//! `specsync-net`: a real wire for SpecSync — the length-prefixed frame
//! codec, the [`Transport`] abstraction, and the TCP servers that let the
//! parameter-server shards, the scheduler, and the workers of the paper's
//! architecture (Fig. 7) run as separate OS processes on one host.
//!
//! # Layers
//!
//! * [`wire`] — the consolidated [`WireMessage`] vocabulary: every frame
//!   any SpecSync role can send, in one enum, shared by the in-process
//!   runtime, the virtual-time simulator's accounting, and the TCP path.
//! * [`frame`] — the binary codec: `"SSNF"` magic, format version,
//!   length prefix, FNV-1a checksum, then a tagged payload. Decoding is
//!   exact-fit: any flipped, missing, or trailing byte rejects.
//! * [`transport`] — the [`Transport`] trait a worker drives its run
//!   through, with two interchangeable implementations:
//!   [`InProcTransport`] (channels; byte-identical to the pre-wire
//!   runtime) and [`TcpTransport`] (sockets, reconnect-on-failover).
//! * [`policy`] — [`ConnPolicy`]: per-op deadlines, jittered backoff
//!   with a retry budget, and the per-peer [`CircuitBreaker`] that lets
//!   a worker park against a broken peer instead of erroring out.
//! * [`chaos`] — deterministic fault injection: [`ChaosStream`] /
//!   [`ChaosListener`] execute a seeded per-connection [`FaultScript`]
//!   (refusals, resets, stalls, trickling, corruption, half-open
//!   silence) behind a [`NetChaos`] config that is free when disabled.
//! * [`host`] — [`ShardHost`], the transport-agnostic shard brain: a
//!   replicated store plus the per-version encoded-frame cache that lets
//!   one serialization serve every concurrent puller of a version.
//! * [`server`] — the process-level hosts: [`ShardServer`] and
//!   [`SchedulerServer`], including warm-backup promotion over TCP when
//!   a primary shard process dies.
//!
//! # The same protocol, two wires
//!
//! The point of the redesign is that `WireMessage` + [`Transport`] is
//! the *only* vocabulary: the threaded runtime's worker loop sends the
//! exact same frames whether its transport is a channel pair in one
//! process or a socket to another. Chaos knobs, failover, and telemetry
//! all act on that shared vocabulary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod config;
pub mod error;
pub mod frame;
pub mod host;
pub mod policy;
pub mod server;
pub mod transport;
pub mod wire;

pub use chaos::{ChaosListener, ChaosScope, ChaosStream, ConnSeq, FaultScript, NetChaos};
pub use config::{NetConfig, NetConfigBuilder};
pub use error::NetError;
pub use frame::{
    decode_frame, encode_frame, read_frame, write_frame, FrameError, FrameReadError, ReadOutcome,
    MAX_SPARSE_DIM, PAYLOAD_LIMIT,
};
pub use host::{PullGrant, PushReceipt, ShardHost};
pub use policy::{Admit, CircuitBreaker, ConnPolicy};
pub use server::{SchedulerConfig, SchedulerRunStats, SchedulerServer, ShardServer, ShardStats};
pub use transport::{
    ConnTarget, Endpoint, FrameConn, InProcTransport, ServerFrame, TcpTransport, Transport,
    TransportStats,
};
pub use wire::{FailoverControl, MessageSizes, WireMessage};
