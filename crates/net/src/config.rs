//! Wire-layer configuration, with the same builder idiom as
//! [`RuntimeConfig::builder`] so both deployment configs read alike.
//!
//! [`RuntimeConfig::builder`]: https://docs.rs/specsync-runtime

use std::time::Duration;

use specsync_core::{Backoff, SpecSyncError};

use crate::chaos::NetChaos;

/// Configuration of the TCP transport and its hosts.
///
/// Construct with [`NetConfig::builder`]; the builder's
/// [`try_build`](NetConfigBuilder::try_build) validates every invariant and
/// returns a typed error, so an impossible wiring never reaches a socket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetConfig {
    /// Attempts a client spends connecting (or reconnecting after a shard
    /// death) before giving up.
    pub connect_retries: u32,
    /// Base delay of the exponential reconnect backoff (doubles per
    /// attempt, capped at one second).
    pub retry_backoff: Duration,
    /// How often clients and shard processes heartbeat the scheduler.
    pub heartbeat_interval: Duration,
    /// Silence after which the scheduler declares a peer dead — for a
    /// primary shard, this triggers warm-backup promotion. Must be at
    /// least twice [`heartbeat_interval`](Self::heartbeat_interval), so a
    /// single delayed beat cannot trip the liveness sweep.
    pub heartbeat_timeout: Duration,
    /// Read timeout for request/response exchanges (doubles as the
    /// per-op send/recv deadline of the connection policy).
    pub io_timeout: Duration,
    /// Granularity of the scheduler server's timer loop (abort deadlines,
    /// liveness sweeps).
    pub tick: Duration,
    /// Retries one logical transport operation (a pull, a push) may spend
    /// before the policy escalates to degraded mode.
    pub op_retry_budget: u32,
    /// Consecutive per-peer failures that trip the circuit breaker open.
    pub breaker_threshold: u32,
    /// How long a tripped breaker fast-fails before half-opening a probe.
    pub breaker_cooldown: Duration,
    /// Bytes per [`SnapshotChunk`] frame when a rejoining backup streams
    /// the checkpoint from the primary. Must be positive and at most
    /// [`PAYLOAD_LIMIT`](crate::frame::PAYLOAD_LIMIT) so every chunk frame
    /// encodes, whatever the store size.
    ///
    /// [`SnapshotChunk`]: crate::wire::FailoverControl::SnapshotChunk
    pub join_chunk_bytes: usize,
    /// How many times a supervisor may restart one crashed role before
    /// declaring the topology unrecoverable. Must be positive — a budget
    /// of 0 silently disables self-healing, which is always a
    /// misconfiguration (run unsupervised instead).
    pub restart_budget: u32,
    /// Fault-injection knobs ([`NetChaos::disabled`] by default — the
    /// wire behaves exactly as if the chaos layer did not exist).
    pub chaos: NetChaos,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            connect_retries: 20,
            retry_backoff: Duration::from_millis(25),
            heartbeat_interval: Duration::from_millis(50),
            heartbeat_timeout: Duration::from_millis(500),
            io_timeout: Duration::from_secs(10),
            tick: Duration::from_millis(5),
            op_retry_budget: 8,
            breaker_threshold: 4,
            breaker_cooldown: Duration::from_millis(200),
            join_chunk_bytes: 1 << 20,
            restart_budget: 5,
            chaos: NetChaos::disabled(),
        }
    }
}

impl NetConfig {
    /// Starts a builder seeded with the defaults.
    pub fn builder() -> NetConfigBuilder {
        NetConfigBuilder {
            config: NetConfig::default(),
        }
    }

    /// Validates the configuration, reporting the first problem as a
    /// typed error.
    pub fn try_validate(&self) -> Result<(), SpecSyncError> {
        if self.connect_retries == 0 {
            return Err(SpecSyncError::InvalidRetryPolicy {
                reason: "connect retry budget must be positive",
            });
        }
        if self.retry_backoff.is_zero() {
            return Err(SpecSyncError::InvalidRetryPolicy {
                reason: "retry backoff base must be positive",
            });
        }
        if self.heartbeat_interval.is_zero() {
            return Err(SpecSyncError::InvalidHeartbeat {
                reason: "heartbeat interval must be positive",
            });
        }
        if self.heartbeat_timeout <= self.heartbeat_interval {
            return Err(SpecSyncError::InvalidHeartbeat {
                reason: "heartbeat timeout must exceed the interval",
            });
        }
        // One delayed or lost beat must not trip the sweep: a timeout in
        // (interval, 2×interval) declares a peer dead the moment a single
        // heartbeat lands late, which promoted healthy shards in testing.
        if self.heartbeat_timeout < self.heartbeat_interval * 2 {
            return Err(SpecSyncError::InvalidHeartbeat {
                reason: "heartbeat timeout must be at least twice the interval \
                         (one delayed beat must not trip the liveness sweep)",
            });
        }
        if self.io_timeout.is_zero() {
            return Err(SpecSyncError::InvalidConfig(
                "i/o timeout must be positive".to_string(),
            ));
        }
        if self.tick.is_zero() {
            return Err(SpecSyncError::InvalidConfig(
                "scheduler tick must be positive".to_string(),
            ));
        }
        if self.op_retry_budget == 0 {
            return Err(SpecSyncError::InvalidRetryPolicy {
                reason: "per-op retry budget must be positive",
            });
        }
        if self.breaker_threshold == 0 {
            return Err(SpecSyncError::InvalidRetryPolicy {
                reason: "circuit breaker threshold must be positive",
            });
        }
        if self.breaker_cooldown.is_zero() {
            return Err(SpecSyncError::InvalidRetryPolicy {
                reason: "circuit breaker cooldown must be positive",
            });
        }
        if self.join_chunk_bytes == 0 {
            return Err(SpecSyncError::InvalidConfig(
                "rejoin snapshot chunk size must be positive".to_string(),
            ));
        }
        if self.join_chunk_bytes > crate::frame::PAYLOAD_LIMIT {
            return Err(SpecSyncError::InvalidConfig(format!(
                "rejoin snapshot chunk size of {} bytes exceeds the {}-byte frame payload limit",
                self.join_chunk_bytes,
                crate::frame::PAYLOAD_LIMIT
            )));
        }
        if self.restart_budget == 0 {
            return Err(SpecSyncError::InvalidRetryPolicy {
                reason: "supervisor restart budget must be positive \
                         (a budget of 0 disables self-healing; run unsupervised instead)",
            });
        }
        if let Err(reason) = self.chaos.try_validate() {
            return Err(SpecSyncError::InvalidConfig(reason));
        }
        Ok(())
    }

    /// The reconnect backoff delay for 0-based `attempt`: doubles per
    /// attempt from [`retry_backoff`](Self::retry_backoff), capped at one
    /// second.
    pub fn backoff_delay(&self, attempt: u32) -> Duration {
        let factor = 1u32 << attempt.min(16);
        (self.retry_backoff * factor).min(Duration::from_secs(1))
    }

    /// The jittered reconnect delay for 0-based `attempt`: the shared
    /// [`Backoff`] schedule scaled into `[0.5, 1.0]×` by a deterministic
    /// hash of `(seed, attempt)`, so reconnect storms after a promotion
    /// do not synchronize across workers while each worker's schedule
    /// stays reproducible.
    pub fn jittered_backoff_delay(&self, attempt: u32, seed: u64) -> Duration {
        let backoff = Backoff::new(self.retry_backoff, self.connect_retries);
        let capped = attempt.min(self.connect_retries.saturating_sub(1));
        backoff
            .jittered(capped, seed)
            .unwrap_or(self.retry_backoff)
            .min(Duration::from_secs(1))
    }
}

/// Builder for [`NetConfig`] — see [`NetConfig::builder`].
#[derive(Debug, Clone)]
pub struct NetConfigBuilder {
    config: NetConfig,
}

impl NetConfigBuilder {
    /// Sets the connect/reconnect retry budget.
    pub fn connect_retries(mut self, retries: u32) -> Self {
        self.config.connect_retries = retries;
        self
    }

    /// Sets the base reconnect backoff delay.
    pub fn retry_backoff(mut self, backoff: Duration) -> Self {
        self.config.retry_backoff = backoff;
        self
    }

    /// Sets the heartbeat interval.
    pub fn heartbeat_interval(mut self, interval: Duration) -> Self {
        self.config.heartbeat_interval = interval;
        self
    }

    /// Sets the heartbeat silence timeout.
    pub fn heartbeat_timeout(mut self, timeout: Duration) -> Self {
        self.config.heartbeat_timeout = timeout;
        self
    }

    /// Sets the request/response read timeout.
    pub fn io_timeout(mut self, timeout: Duration) -> Self {
        self.config.io_timeout = timeout;
        self
    }

    /// Sets the scheduler timer granularity.
    pub fn tick(mut self, tick: Duration) -> Self {
        self.config.tick = tick;
        self
    }

    /// Sets the per-op retry budget of the connection policy.
    pub fn op_retry_budget(mut self, budget: u32) -> Self {
        self.config.op_retry_budget = budget;
        self
    }

    /// Sets the circuit breaker's consecutive-failure threshold.
    pub fn breaker_threshold(mut self, threshold: u32) -> Self {
        self.config.breaker_threshold = threshold;
        self
    }

    /// Sets the circuit breaker's fast-fail cooldown.
    pub fn breaker_cooldown(mut self, cooldown: Duration) -> Self {
        self.config.breaker_cooldown = cooldown;
        self
    }

    /// Sets the rejoin snapshot chunk size.
    pub fn join_chunk_bytes(mut self, bytes: usize) -> Self {
        self.config.join_chunk_bytes = bytes;
        self
    }

    /// Sets the supervisor restart budget.
    pub fn restart_budget(mut self, budget: u32) -> Self {
        self.config.restart_budget = budget;
        self
    }

    /// Sets the fault-injection configuration.
    pub fn chaos(mut self, chaos: NetChaos) -> Self {
        self.config.chaos = chaos;
        self
    }

    /// Validates and returns the configuration.
    pub fn try_build(self) -> Result<NetConfig, SpecSyncError> {
        self.config.try_validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_builds() {
        let cfg = NetConfig::builder().try_build().unwrap();
        assert_eq!(cfg, NetConfig::default());
    }

    #[test]
    fn builder_overrides_and_validates() {
        let cfg = NetConfig::builder()
            .connect_retries(3)
            .retry_backoff(Duration::from_millis(10))
            .heartbeat_interval(Duration::from_millis(20))
            .heartbeat_timeout(Duration::from_millis(100))
            .io_timeout(Duration::from_secs(1))
            .tick(Duration::from_millis(2))
            .try_build()
            .unwrap();
        assert_eq!(cfg.connect_retries, 3);
        assert_eq!(cfg.heartbeat_timeout, Duration::from_millis(100));
    }

    #[test]
    fn degenerate_heartbeat_rejected() {
        let err = NetConfig::builder()
            .heartbeat_interval(Duration::from_millis(100))
            .heartbeat_timeout(Duration::from_millis(100))
            .try_build()
            .unwrap_err();
        assert!(
            matches!(err, SpecSyncError::InvalidHeartbeat { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn timeout_within_one_beat_of_interval_rejected() {
        // Strictly greater than the interval but below 2× — a single
        // delayed heartbeat would trip the sweep, so try_build refuses.
        let err = NetConfig::builder()
            .heartbeat_interval(Duration::from_millis(100))
            .heartbeat_timeout(Duration::from_millis(150))
            .try_build()
            .unwrap_err();
        assert!(
            matches!(err, SpecSyncError::InvalidHeartbeat { .. }),
            "got {err:?}"
        );
        // Exactly 2× is the boundary and is accepted.
        assert!(NetConfig::builder()
            .heartbeat_interval(Duration::from_millis(100))
            .heartbeat_timeout(Duration::from_millis(200))
            .try_build()
            .is_ok());
    }

    #[test]
    fn degenerate_policy_knobs_rejected() {
        for build in [
            NetConfig::builder().op_retry_budget(0),
            NetConfig::builder().breaker_threshold(0),
            NetConfig::builder().breaker_cooldown(Duration::ZERO),
        ] {
            let err = build.try_build().unwrap_err();
            assert!(
                matches!(err, SpecSyncError::InvalidRetryPolicy { .. }),
                "got {err:?}"
            );
        }
    }

    #[test]
    fn degenerate_rejoin_knobs_rejected() {
        let err = NetConfig::builder()
            .join_chunk_bytes(0)
            .try_build()
            .unwrap_err();
        assert!(
            matches!(err, SpecSyncError::InvalidConfig(_)),
            "got {err:?}"
        );
        let err = NetConfig::builder()
            .join_chunk_bytes(crate::frame::PAYLOAD_LIMIT + 1)
            .try_build()
            .unwrap_err();
        assert!(
            matches!(err, SpecSyncError::InvalidConfig(_)),
            "got {err:?}"
        );
        // The payload limit itself is the boundary: a chunk that exactly
        // fills a frame still encodes.
        assert!(NetConfig::builder()
            .join_chunk_bytes(crate::frame::PAYLOAD_LIMIT)
            .try_build()
            .is_ok());
        let err = NetConfig::builder().restart_budget(0).try_build().unwrap_err();
        assert!(
            matches!(err, SpecSyncError::InvalidRetryPolicy { .. }),
            "got {err:?}"
        );
        assert!(NetConfig::builder().restart_budget(1).try_build().is_ok());
    }

    #[test]
    fn degenerate_chaos_rejected_and_valid_chaos_accepted() {
        let mut chaos = crate::chaos::NetChaos::disabled();
        chaos.reset_permille = 2000;
        let err = NetConfig::builder().chaos(chaos).try_build().unwrap_err();
        assert!(
            matches!(err, SpecSyncError::InvalidConfig(_)),
            "got {err:?}"
        );
        let mut chaos = crate::chaos::NetChaos::disabled();
        chaos.seed = 11;
        chaos.reset_permille = 50;
        assert!(NetConfig::builder().chaos(chaos).try_build().is_ok());
    }

    #[test]
    fn jittered_backoff_bounded_by_unjittered_and_stable() {
        let cfg = NetConfig::default();
        for attempt in 0..cfg.connect_retries {
            let j = cfg.jittered_backoff_delay(attempt, 3);
            assert!(j <= cfg.backoff_delay(attempt).max(Backoff::MAX_DELAY));
            assert!(!j.is_zero());
            assert_eq!(j, cfg.jittered_backoff_delay(attempt, 3));
        }
        // Distinct seeds walk distinct schedules (storm decorrelation).
        let a: Vec<_> = (0..8).map(|i| cfg.jittered_backoff_delay(i, 1)).collect();
        let b: Vec<_> = (0..8).map(|i| cfg.jittered_backoff_delay(i, 2)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn zero_retries_rejected() {
        let err = NetConfig::builder()
            .connect_retries(0)
            .try_build()
            .unwrap_err();
        assert!(
            matches!(err, SpecSyncError::InvalidRetryPolicy { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let cfg = NetConfig::default();
        assert_eq!(cfg.backoff_delay(0), Duration::from_millis(25));
        assert_eq!(cfg.backoff_delay(1), Duration::from_millis(50));
        assert_eq!(cfg.backoff_delay(30), Duration::from_secs(1));
    }
}
