//! Wire-layer configuration, with the same builder idiom as
//! [`RuntimeConfig::builder`] so both deployment configs read alike.
//!
//! [`RuntimeConfig::builder`]: https://docs.rs/specsync-runtime

use std::time::Duration;

use specsync_core::SpecSyncError;

/// Configuration of the TCP transport and its hosts.
///
/// Construct with [`NetConfig::builder`]; the builder's
/// [`try_build`](NetConfigBuilder::try_build) validates every invariant and
/// returns a typed error, so an impossible wiring never reaches a socket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetConfig {
    /// Attempts a client spends connecting (or reconnecting after a shard
    /// death) before giving up.
    pub connect_retries: u32,
    /// Base delay of the exponential reconnect backoff (doubles per
    /// attempt, capped at one second).
    pub retry_backoff: Duration,
    /// How often clients and shard processes heartbeat the scheduler.
    pub heartbeat_interval: Duration,
    /// Silence after which the scheduler declares a peer dead — for a
    /// primary shard, this triggers warm-backup promotion. Must exceed
    /// [`heartbeat_interval`](Self::heartbeat_interval).
    pub heartbeat_timeout: Duration,
    /// Read timeout for request/response exchanges.
    pub io_timeout: Duration,
    /// Granularity of the scheduler server's timer loop (abort deadlines,
    /// liveness sweeps).
    pub tick: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            connect_retries: 20,
            retry_backoff: Duration::from_millis(25),
            heartbeat_interval: Duration::from_millis(50),
            heartbeat_timeout: Duration::from_millis(500),
            io_timeout: Duration::from_secs(10),
            tick: Duration::from_millis(5),
        }
    }
}

impl NetConfig {
    /// Starts a builder seeded with the defaults.
    pub fn builder() -> NetConfigBuilder {
        NetConfigBuilder {
            config: NetConfig::default(),
        }
    }

    /// Validates the configuration, reporting the first problem as a
    /// typed error.
    pub fn try_validate(&self) -> Result<(), SpecSyncError> {
        if self.connect_retries == 0 {
            return Err(SpecSyncError::InvalidRetryPolicy {
                reason: "connect retry budget must be positive",
            });
        }
        if self.retry_backoff.is_zero() {
            return Err(SpecSyncError::InvalidRetryPolicy {
                reason: "retry backoff base must be positive",
            });
        }
        if self.heartbeat_interval.is_zero() {
            return Err(SpecSyncError::InvalidHeartbeat {
                reason: "heartbeat interval must be positive",
            });
        }
        if self.heartbeat_timeout <= self.heartbeat_interval {
            return Err(SpecSyncError::InvalidHeartbeat {
                reason: "heartbeat timeout must exceed the interval",
            });
        }
        if self.io_timeout.is_zero() {
            return Err(SpecSyncError::InvalidConfig(
                "i/o timeout must be positive".to_string(),
            ));
        }
        if self.tick.is_zero() {
            return Err(SpecSyncError::InvalidConfig(
                "scheduler tick must be positive".to_string(),
            ));
        }
        Ok(())
    }

    /// The reconnect backoff delay for 0-based `attempt`: doubles per
    /// attempt from [`retry_backoff`](Self::retry_backoff), capped at one
    /// second.
    pub fn backoff_delay(&self, attempt: u32) -> Duration {
        let factor = 1u32 << attempt.min(16);
        (self.retry_backoff * factor).min(Duration::from_secs(1))
    }
}

/// Builder for [`NetConfig`] — see [`NetConfig::builder`].
#[derive(Debug, Clone)]
pub struct NetConfigBuilder {
    config: NetConfig,
}

impl NetConfigBuilder {
    /// Sets the connect/reconnect retry budget.
    pub fn connect_retries(mut self, retries: u32) -> Self {
        self.config.connect_retries = retries;
        self
    }

    /// Sets the base reconnect backoff delay.
    pub fn retry_backoff(mut self, backoff: Duration) -> Self {
        self.config.retry_backoff = backoff;
        self
    }

    /// Sets the heartbeat interval.
    pub fn heartbeat_interval(mut self, interval: Duration) -> Self {
        self.config.heartbeat_interval = interval;
        self
    }

    /// Sets the heartbeat silence timeout.
    pub fn heartbeat_timeout(mut self, timeout: Duration) -> Self {
        self.config.heartbeat_timeout = timeout;
        self
    }

    /// Sets the request/response read timeout.
    pub fn io_timeout(mut self, timeout: Duration) -> Self {
        self.config.io_timeout = timeout;
        self
    }

    /// Sets the scheduler timer granularity.
    pub fn tick(mut self, tick: Duration) -> Self {
        self.config.tick = tick;
        self
    }

    /// Validates and returns the configuration.
    pub fn try_build(self) -> Result<NetConfig, SpecSyncError> {
        self.config.try_validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_builds() {
        let cfg = NetConfig::builder().try_build().unwrap();
        assert_eq!(cfg, NetConfig::default());
    }

    #[test]
    fn builder_overrides_and_validates() {
        let cfg = NetConfig::builder()
            .connect_retries(3)
            .retry_backoff(Duration::from_millis(10))
            .heartbeat_interval(Duration::from_millis(20))
            .heartbeat_timeout(Duration::from_millis(100))
            .io_timeout(Duration::from_secs(1))
            .tick(Duration::from_millis(2))
            .try_build()
            .unwrap();
        assert_eq!(cfg.connect_retries, 3);
        assert_eq!(cfg.heartbeat_timeout, Duration::from_millis(100));
    }

    #[test]
    fn degenerate_heartbeat_rejected() {
        let err = NetConfig::builder()
            .heartbeat_interval(Duration::from_millis(100))
            .heartbeat_timeout(Duration::from_millis(100))
            .try_build()
            .unwrap_err();
        assert!(
            matches!(err, SpecSyncError::InvalidHeartbeat { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn zero_retries_rejected() {
        let err = NetConfig::builder()
            .connect_retries(0)
            .try_build()
            .unwrap_err();
        assert!(
            matches!(err, SpecSyncError::InvalidRetryPolicy { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let cfg = NetConfig::default();
        assert_eq!(cfg.backoff_delay(0), Duration::from_millis(25));
        assert_eq!(cfg.backoff_delay(1), Duration::from_millis(50));
        assert_eq!(cfg.backoff_delay(30), Duration::from_secs(1));
    }
}
