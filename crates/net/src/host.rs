//! The shard-side protocol handler: one [`ShardHost`] owns the
//! [`ReplicatedStore`] and answers every [`WireMessage`] a shard can
//! receive.
//!
//! Both deployments route through it:
//!
//! - the virtual-time **simulator driver** calls the typed verbs
//!   ([`pull`](ShardHost::pull), [`push_dense`](ShardHost::push_dense),
//!   [`push_sparse`](ShardHost::push_sparse),
//!   [`failover`](ShardHost::failover)) directly — borrowed gradients, no
//!   frame encode on the hot path, store-call order identical to the
//!   pre-wire seed so golden traces stay byte-identical;
//! - the **TCP shard server** (and any in-process frame loop) routes
//!   decoded frames through [`handle`](ShardHost::handle), which calls the
//!   same verbs.
//!
//! Pull serving is read-mostly: the host serializes each store version's
//! `PullReply` frame **once** and shares the encoded bytes (`Arc<[u8]>`)
//! across every concurrent client until the next push bumps the version —
//! the wire-side twin of [`ParameterStore`]'s `Arc<[f32]>` snapshot cache.
//!
//! [`ParameterStore`]: specsync_ps::ParameterStore

use std::fmt;
use std::sync::Arc;

use specsync_ps::{ParamSnapshot, PushPayload, ReplicaError, ReplicatedStore};
use specsync_simnet::WorkerId;
use specsync_tensor::SparseGrad;

use crate::error::NetError;
use crate::frame::encode_frame;
use crate::wire::{FailoverControl, WireMessage};

/// Learning rate the frame path uses when no schedule is installed (the
/// driver's verb path always supplies its own per-push rate).
pub const DEFAULT_FRAME_LR: f32 = 0.05;

/// A served pull: the snapshot plus the staleness the request observed.
#[derive(Debug, Clone)]
pub struct PullGrant {
    /// The parameter snapshot (shared block + version).
    pub snapshot: ParamSnapshot,
    /// Versions the puller was behind at request time.
    pub staleness: u64,
}

/// An applied push: what the shard acknowledges back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PushReceipt {
    /// Store version after the apply.
    pub version: u64,
    /// Cumulative applied pushes by the pushing worker.
    pub pushes_by_worker: u64,
}

type LrFn = Box<dyn Fn(u64) -> f32 + Send>;

/// The shard protocol handler. See the module docs.
pub struct ShardHost {
    store: ReplicatedStore,
    lr_fn: Option<LrFn>,
    /// Applied pushes per worker index, for the frame path's epoch
    /// estimate (an epoch completes when every tracked worker has one
    /// more push — same rule as the threaded runtime's server thread).
    per_worker: Vec<u64>,
    epochs: u64,
    /// Encoded `PullReply` frame for `(version, bytes)` — rebuilt once
    /// per store version, shared across clients.
    encoded: Option<(u64, Arc<[u8]>)>,
}

impl fmt::Debug for ShardHost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardHost")
            .field("version", &self.store.version())
            .field("available", &self.store.is_available())
            .field("epochs", &self.epochs)
            .field("has_lr_fn", &self.lr_fn.is_some())
            .finish()
    }
}

impl ShardHost {
    /// Wraps a replicated store.
    pub fn new(store: ReplicatedStore) -> Self {
        ShardHost {
            store,
            lr_fn: None,
            per_worker: Vec::new(),
            epochs: 0,
            encoded: None,
        }
    }

    /// Installs the learning-rate schedule the *frame* path applies
    /// (epochs → rate). Without one, frame pushes use
    /// [`DEFAULT_FRAME_LR`]; the verb path is unaffected either way.
    pub fn with_lr_fn(mut self, lr_fn: impl Fn(u64) -> f32 + Send + 'static) -> Self {
        self.lr_fn = Some(Box::new(lr_fn));
        self
    }

    /// Pre-registers `m` workers so the epoch estimate counts silent ones
    /// from the start (otherwise workers are tracked on first push).
    pub fn with_workers(mut self, m: usize) -> Self {
        self.per_worker = vec![0; m];
        self
    }

    /// The wrapped store, for reads the protocol does not cover
    /// (evaluation, checkpointing).
    pub fn replica(&self) -> &ReplicatedStore {
        &self.store
    }

    /// Mutable access to the wrapped store.
    pub fn replica_mut(&mut self) -> &mut ReplicatedStore {
        &mut self.store
    }

    /// Whether the serving replica is up.
    pub fn is_available(&self) -> bool {
        self.store.is_available()
    }

    /// Epochs completed under the frame path's estimate.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Serves a pull: staleness is observed first, then the pull is
    /// registered — the exact store-call order of the seed driver.
    ///
    /// # Errors
    ///
    /// [`ReplicaError::ServerDown`] while the shard is failing over.
    pub fn pull(&mut self, worker: WorkerId) -> Result<PullGrant, ReplicaError> {
        let staleness = self.store.staleness_of(worker);
        let snapshot = self.store.try_pull(worker)?;
        Ok(PullGrant {
            snapshot,
            staleness,
        })
    }

    /// Applies a dense push.
    ///
    /// # Errors
    ///
    /// [`ReplicaError::ServerDown`] while the shard is failing over.
    pub fn push_dense(
        &mut self,
        worker: WorkerId,
        grad: &[f32],
        lr: f32,
    ) -> Result<PushReceipt, ReplicaError> {
        let version = self.store.try_apply_push(worker, grad, lr)?;
        Ok(self.receipt(worker, version))
    }

    /// Applies a sparse push.
    ///
    /// # Errors
    ///
    /// [`ReplicaError::ServerDown`] while the shard is failing over.
    pub fn push_sparse(
        &mut self,
        worker: WorkerId,
        grad: &SparseGrad,
        lr: f32,
    ) -> Result<PushReceipt, ReplicaError> {
        let version = self.store.try_apply_push_sparse(worker, grad, lr)?;
        Ok(self.receipt(worker, version))
    }

    fn receipt(&mut self, worker: WorkerId, version: u64) -> PushReceipt {
        let pushes_by_worker = self.store.pushes_by(worker);
        let idx = worker.index();
        if idx >= self.per_worker.len() {
            self.per_worker.resize(idx + 1, 0);
        }
        self.per_worker[idx] = self.per_worker[idx].max(pushes_by_worker);
        let min = self.per_worker.iter().min().copied().unwrap_or(0);
        if min > self.epochs {
            self.epochs = min;
        }
        PushReceipt {
            version,
            pushes_by_worker,
        }
    }

    /// Executes a failover control verb against the replica pair.
    ///
    /// # Errors
    ///
    /// [`NetError::Replica`] when the store refuses (unknown server,
    /// wrong state); [`NetError::Unhandled`] for reply-only or
    /// scheduler-plane verbs.
    pub fn failover(&mut self, control: &FailoverControl) -> Result<FailoverControl, NetError> {
        match control {
            FailoverControl::Crash { server } => {
                self.store.crash_server(*server as usize)?;
                Ok(FailoverControl::Ack { server: *server })
            }
            FailoverControl::Promote { server } => {
                let replayed = self.store.promote(*server as usize)?;
                Ok(FailoverControl::Promoted {
                    server: *server,
                    version: self.store.version(),
                    replayed,
                })
            }
            FailoverControl::Recover { server } => {
                self.store.recover_server(*server as usize)?;
                Ok(FailoverControl::Ack { server: *server })
            }
            FailoverControl::Promoted { .. } | FailoverControl::Ack { .. } => {
                Err(NetError::Unhandled {
                    what: "failover reply sent to a shard host",
                })
            }
            FailoverControl::Register { .. }
            | FailoverControl::QueryPrimary
            | FailoverControl::Primary { .. } => Err(NetError::Unhandled {
                what: "scheduler-plane failover verb sent to a shard host",
            }),
            // The rejoin handshake is connection-plane: the server's apply
            // thread drives the snapshot/catch-up stream itself, because
            // the protocol owns a socket, not just the store.
            FailoverControl::JoinAsBackup { .. }
            | FailoverControl::SnapshotChunk { .. }
            | FailoverControl::CatchUp { .. }
            | FailoverControl::BackupReady { .. } => Err(NetError::Unhandled {
                what: "rejoin-protocol verb routed past the server connection layer",
            }),
        }
    }

    /// Tags an incoming `Push` frame as the [`WireMessage::RelayPush`] the
    /// write-ahead relay forwards: the sequence number is the version this
    /// push will produce, and the learning rate is the one this host will
    /// apply — so the backup replays bit-identical arithmetic and can drop
    /// re-deliveries by sequence. Returns `None` for any other frame.
    pub fn tag_relay(&self, frame: &WireMessage) -> Option<WireMessage> {
        let WireMessage::Push { worker, payload } = frame else {
            return None;
        };
        let lr = match &self.lr_fn {
            Some(f) => f(self.epochs),
            None => DEFAULT_FRAME_LR,
        };
        Some(WireMessage::RelayPush {
            seq: self.store.version() + 1,
            worker: *worker,
            lr,
            payload: payload.clone(),
        })
    }

    /// Replaces the wrapped store with one rebuilt from a rejoin snapshot
    /// (checkpoint restore + tail replay happen at the caller); the
    /// encoded-reply cache is dropped so no pre-join bytes can be served.
    pub fn install_store(&mut self, store: ReplicatedStore) {
        self.store = store;
        self.encoded = None;
    }

    /// Handles one decoded frame, returning the reply frame (if the verb
    /// has one). This is the uniform entry the socket servers use; it
    /// calls the same verbs the simulator driver calls directly.
    ///
    /// # Errors
    ///
    /// [`NetError::Replica`] when the store refuses;
    /// [`NetError::Unhandled`] for frames a shard never receives.
    pub fn handle(&mut self, frame: WireMessage) -> Result<Option<WireMessage>, NetError> {
        match frame {
            WireMessage::Pull { worker } => {
                let grant = self.pull(worker)?;
                Ok(Some(WireMessage::PullReply {
                    version: grant.snapshot.version(),
                    params: grant.snapshot.into_shared(),
                }))
            }
            WireMessage::Push { worker, payload } => {
                let lr = match &self.lr_fn {
                    Some(f) => f(self.epochs),
                    None => DEFAULT_FRAME_LR,
                };
                let receipt = match &payload {
                    PushPayload::Dense(grad) => self.push_dense(worker, grad, lr)?,
                    PushPayload::Sparse(grad) => self.push_sparse(worker, grad, lr)?,
                };
                Ok(Some(WireMessage::PushAck {
                    version: receipt.version,
                    pushes_by_worker: receipt.pushes_by_worker,
                }))
            }
            WireMessage::RelayPush {
                seq,
                worker,
                lr,
                payload,
            } => {
                let version = self.store.version();
                if seq <= version {
                    // At-least-once re-delivery (or a rejoin tail that
                    // overlaps live relays): this sequence is already in
                    // the store, so ack without touching it — applying
                    // twice would double the gradient.
                    return Ok(Some(WireMessage::PushAck {
                        version,
                        pushes_by_worker: self.store.pushes_by(worker),
                    }));
                }
                if seq != version + 1 {
                    return Err(NetError::Unhandled {
                        what: "relay push sequence gap",
                    });
                }
                let receipt = match &payload {
                    PushPayload::Dense(grad) => self.push_dense(worker, grad, lr)?,
                    PushPayload::Sparse(grad) => self.push_sparse(worker, grad, lr)?,
                };
                Ok(Some(WireMessage::PushAck {
                    version: receipt.version,
                    pushes_by_worker: receipt.pushes_by_worker,
                }))
            }
            WireMessage::Failover(control) => {
                Ok(Some(WireMessage::Failover(self.failover(&control)?)))
            }
            WireMessage::Shutdown => Ok(None),
            WireMessage::PullReply { .. } | WireMessage::PushAck { .. } => {
                Err(NetError::Unhandled {
                    what: "reply frame sent to a shard host",
                })
            }
            WireMessage::Notify { .. }
            | WireMessage::Check { .. }
            | WireMessage::Abort { .. }
            | WireMessage::Heartbeat { .. } => Err(NetError::Unhandled {
                what: "scheduler-plane frame sent to a shard host",
            }),
        }
    }

    /// Serves a pull as pre-encoded frame bytes: the `PullReply` frame for
    /// the current version is serialized once and shared (`Arc`) across
    /// every concurrent client until a push bumps the version. Returns the
    /// bytes and the observed staleness.
    ///
    /// # Errors
    ///
    /// [`NetError::Replica`] wrapping [`ReplicaError::ServerDown`] while
    /// the shard is failing over; [`NetError::Frame`] when the model
    /// dimension exceeds the frame payload limit (deterministic on the
    /// first pull, at store-construction dimension — never mid-run).
    pub fn encoded_pull_reply(&mut self, worker: WorkerId) -> Result<(Arc<[u8]>, u64), NetError> {
        let grant = self.pull(worker)?;
        let version = grant.snapshot.version();
        if let Some((cached_version, bytes)) = &self.encoded {
            if *cached_version == version {
                return Ok((Arc::clone(bytes), grant.staleness));
            }
        }
        let frame = encode_frame(&WireMessage::PullReply {
            version,
            params: grant.snapshot.into_shared(),
        })?;
        let bytes: Arc<[u8]> = Arc::from(frame);
        self.encoded = Some((version, Arc::clone(&bytes)));
        Ok((bytes, grant.staleness))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::decode_frame;
    use specsync_ps::ParameterStore;

    fn host() -> ShardHost {
        let store = ParameterStore::new(vec![0.0; 8], 2);
        ShardHost::new(ReplicatedStore::from_store(
            store,
            ReplicatedStore::DEFAULT_JOURNAL_CAPACITY,
        ))
        .with_workers(2)
    }

    #[test]
    fn pull_after_push_sees_new_version() {
        let mut h = host();
        let w = WorkerId::new(0);
        let r = h.push_dense(w, &[1.0; 8], 0.1).unwrap();
        assert_eq!(r.version, 1);
        assert_eq!(r.pushes_by_worker, 1);
        let grant = h.pull(w).unwrap();
        assert_eq!(grant.snapshot.version(), 1);
    }

    #[test]
    fn frame_path_matches_verb_path() {
        let mut h = host();
        let w = WorkerId::new(1);
        let reply = h
            .handle(WireMessage::Push {
                worker: w,
                payload: PushPayload::Dense(vec![0.5; 8]),
            })
            .unwrap();
        assert_eq!(
            reply,
            Some(WireMessage::PushAck {
                version: 1,
                pushes_by_worker: 1
            })
        );
        let reply = h.handle(WireMessage::Pull { worker: w }).unwrap();
        let Some(WireMessage::PullReply { version, params }) = reply else {
            panic!("want PullReply, got {reply:?}");
        };
        assert_eq!(version, 1);
        assert_eq!(params.len(), 8);
    }

    #[test]
    fn encoded_reply_is_shared_until_version_bumps() {
        let mut h = host();
        let w0 = WorkerId::new(0);
        let w1 = WorkerId::new(1);
        h.push_dense(w0, &[1.0; 8], 0.1).unwrap();
        let (a, _) = h.encoded_pull_reply(w0).unwrap();
        let (b, _) = h.encoded_pull_reply(w1).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same version must share bytes");
        let decoded = decode_frame(&a).unwrap();
        assert!(matches!(decoded, WireMessage::PullReply { version: 1, .. }));
        h.push_dense(w1, &[1.0; 8], 0.1).unwrap();
        let (c, _) = h.encoded_pull_reply(w0).unwrap();
        assert!(!Arc::ptr_eq(&a, &c), "new version must re-serialize");
    }

    /// The server's serving idiom — lock the host, grab the encoded
    /// reply, write outside the lock — under concurrent pullers while a
    /// pusher bumps versions and a crash/promote cycle runs mid-stream:
    /// no puller may ever decode a version older than one it already saw
    /// (a stale cached frame surviving the promotion would do exactly
    /// that), and after promotion the cache must serve the store's real
    /// version, not the pre-crash bytes.
    #[test]
    fn concurrent_pullers_never_decode_a_stale_cached_reply_across_promotion() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let h = Arc::new(parking_lot::Mutex::new(host()));
        let stop = Arc::new(AtomicBool::new(false));
        let mut pullers = Vec::new();
        for t in 0..4usize {
            let h = Arc::clone(&h);
            let stop = Arc::clone(&stop);
            pullers.push(std::thread::spawn(move || {
                let w = WorkerId::new(t % 2);
                let mut last = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // ServerDown mid-failover is expected; keep pulling.
                    let Ok((bytes, _)) = h.lock().encoded_pull_reply(w) else {
                        continue;
                    };
                    let WireMessage::PullReply { version, .. } = decode_frame(&bytes).unwrap()
                    else {
                        panic!("cache served a non-PullReply frame");
                    };
                    assert!(version >= last, "stale cached reply: {version} < {last}");
                    last = version;
                }
            }));
        }
        let w0 = WorkerId::new(0);
        let w1 = WorkerId::new(1);
        for _ in 0..10 {
            h.lock().push_dense(w0, &[1.0; 8], 0.1).unwrap();
            h.lock().push_dense(w1, &[1.0; 8], 0.1).unwrap();
            std::thread::yield_now();
        }
        let pre_crash = h.lock().encoded_pull_reply(w0).unwrap().0;
        {
            let mut locked = h.lock();
            locked
                .failover(&FailoverControl::Crash { server: 0 })
                .unwrap();
            locked
                .failover(&FailoverControl::Promote { server: 0 })
                .unwrap();
        }
        for _ in 0..10 {
            h.lock().push_dense(w0, &[1.0; 8], 0.1).unwrap();
            h.lock().push_dense(w1, &[1.0; 8], 0.1).unwrap();
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
        for p in pullers {
            p.join().unwrap();
        }
        let mut locked = h.lock();
        let store_version = locked.replica().version();
        let (bytes, _) = locked.encoded_pull_reply(w0).unwrap();
        let WireMessage::PullReply { version, .. } = decode_frame(&bytes).unwrap() else {
            panic!("cache served a non-PullReply frame");
        };
        assert_eq!(version, store_version, "cache must track the live store");
        assert!(
            !Arc::ptr_eq(&pre_crash, &bytes),
            "post-promotion pulls must not reuse pre-crash bytes"
        );
    }

    #[test]
    fn staleness_observed_before_pull_registers() {
        let mut h = host();
        let w = WorkerId::new(0);
        h.pull(w).unwrap();
        h.push_dense(WorkerId::new(1), &[1.0; 8], 0.1).unwrap();
        let grant = h.pull(w).unwrap();
        assert_eq!(grant.staleness, 1, "one version behind at request time");
    }

    #[test]
    fn failover_round_trip() {
        let mut h = host();
        let w = WorkerId::new(0);
        h.push_dense(w, &[1.0; 8], 0.1).unwrap();
        let ack = h.failover(&FailoverControl::Crash { server: 0 }).unwrap();
        assert_eq!(ack, FailoverControl::Ack { server: 0 });
        assert!(!h.is_available());
        assert!(matches!(h.pull(w), Err(ReplicaError::ServerDown { .. })));
        let promoted = h.failover(&FailoverControl::Promote { server: 0 }).unwrap();
        let FailoverControl::Promoted {
            version, replayed, ..
        } = promoted
        else {
            panic!("want Promoted, got {promoted:?}");
        };
        assert_eq!(version, 1);
        assert_eq!(replayed, 1, "promotion replays the journaled push");
        assert!(h.is_available());
    }

    #[test]
    fn relay_push_redelivery_is_idempotent() {
        let mut h = host();
        let w = WorkerId::new(0);
        let relay = WireMessage::RelayPush {
            seq: 1,
            worker: w,
            lr: 0.1,
            payload: PushPayload::Dense(vec![1.0; 8]),
        };
        let ack = h.handle(relay.clone()).unwrap();
        assert_eq!(
            ack,
            Some(WireMessage::PushAck {
                version: 1,
                pushes_by_worker: 1
            })
        );
        let params_once: Vec<f32> = h.replica_mut().params().to_vec();

        // The at-least-once relay re-delivers the same sequence (e.g. the
        // primary retried after a dropped ack): the backup must ack
        // without re-applying.
        let ack = h.handle(relay).unwrap();
        assert_eq!(
            ack,
            Some(WireMessage::PushAck {
                version: 1,
                pushes_by_worker: 1
            })
        );
        assert_eq!(
            h.replica_mut().params(),
            params_once.as_slice(),
            "a re-delivered relay must not double-apply"
        );

        // A sequence gap is a protocol break, not silently absorbed.
        let err = h
            .handle(WireMessage::RelayPush {
                seq: 5,
                worker: w,
                lr: 0.1,
                payload: PushPayload::Dense(vec![1.0; 8]),
            })
            .unwrap_err();
        assert!(matches!(err, NetError::Unhandled { .. }));
    }

    #[test]
    fn tag_relay_carries_seq_and_lr() {
        let mut h = host().with_lr_fn(|_| 0.25);
        let w = WorkerId::new(1);
        h.push_dense(w, &[1.0; 8], 0.25).unwrap();
        let push = WireMessage::Push {
            worker: w,
            payload: PushPayload::Dense(vec![0.5; 8]),
        };
        let tagged = h.tag_relay(&push).unwrap();
        let WireMessage::RelayPush {
            seq,
            worker,
            lr,
            payload,
        } = tagged
        else {
            panic!("tag_relay must produce RelayPush");
        };
        assert_eq!(seq, 2, "seq is the version this push will produce");
        assert_eq!(worker, w);
        assert_eq!(lr, 0.25);
        assert_eq!(payload, PushPayload::Dense(vec![0.5; 8]));
        assert_eq!(
            h.tag_relay(&WireMessage::Shutdown),
            None,
            "only pushes relay"
        );
    }

    #[test]
    fn scheduler_plane_frames_are_refused() {
        let mut h = host();
        let err = h
            .handle(WireMessage::Notify {
                worker: WorkerId::new(0),
                pushes: 1,
            })
            .unwrap_err();
        assert!(matches!(err, NetError::Unhandled { .. }));
    }
}
