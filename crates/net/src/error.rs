//! The typed error surface of the wire layer.

use std::fmt;
use std::io;

use specsync_core::SpecSyncError;
use specsync_ps::ReplicaError;

use crate::frame::{FrameError, FrameReadError};

/// Why a transport or host operation failed.
#[derive(Debug)]
pub enum NetError {
    /// The underlying socket or channel failed.
    Io(io::Error),
    /// The bytes on the wire do not form a valid frame.
    Frame(FrameError),
    /// The replicated store refused the operation.
    Replica(ReplicaError),
    /// This frame is not one the sender/handler speaks — e.g. a worker
    /// transport asked to *send* a reply-only frame, or a shard host
    /// handed a scheduler-plane frame.
    Unhandled {
        /// What was attempted.
        what: &'static str,
    },
    /// A request/response exchange returned the wrong frame kind.
    UnexpectedReply {
        /// The frame kind the caller expected.
        want: &'static str,
    },
    /// Connecting (or reconnecting) exhausted the retry budget.
    ConnectFailed {
        /// The address last attempted.
        addr: String,
        /// Attempts spent.
        attempts: u32,
    },
    /// The per-peer circuit breaker is open: the operation fast-failed
    /// without touching the socket.
    CircuitOpen {
        /// The peer address the breaker guards.
        addr: String,
    },
    /// One logical operation spent its whole retry budget.
    RetryExhausted {
        /// Attempts spent before giving up.
        attempts: u32,
    },
    /// The peer (or in-process host thread) is gone.
    Disconnected,
    /// The [`NetConfig`](crate::NetConfig) failed validation at the
    /// transport/server entry point.
    Config(SpecSyncError),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "transport i/o error: {e}"),
            NetError::Frame(e) => write!(f, "{e}"),
            NetError::Replica(e) => write!(f, "store refused: {e}"),
            NetError::Unhandled { what } => write!(f, "frame not handled here: {what}"),
            NetError::UnexpectedReply { want } => {
                write!(f, "peer replied with the wrong frame (expected {want})")
            }
            NetError::ConnectFailed { addr, attempts } => {
                write!(f, "could not connect to {addr} after {attempts} attempts")
            }
            NetError::CircuitOpen { addr } => {
                write!(f, "circuit breaker open for {addr}: fast-failing")
            }
            NetError::RetryExhausted { attempts } => {
                write!(f, "operation abandoned after {attempts} attempts")
            }
            NetError::Disconnected => write!(f, "peer disconnected"),
            NetError::Config(e) => write!(f, "invalid net config: {e}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            NetError::Frame(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<FrameError> for NetError {
    fn from(e: FrameError) -> Self {
        NetError::Frame(e)
    }
}

impl From<FrameReadError> for NetError {
    fn from(e: FrameReadError) -> Self {
        match e {
            FrameReadError::Io(e) => NetError::Io(e),
            FrameReadError::Frame(e) => NetError::Frame(e),
        }
    }
}

impl From<ReplicaError> for NetError {
    fn from(e: ReplicaError) -> Self {
        NetError::Replica(e)
    }
}
