//! Property: the wire-level rejoin protocol — snapshot transfer in
//! bounded chunks, journal-tail catch-up, then live write-ahead relays —
//! leaves the joining backup bit-identical to the primary, for any push
//! workload racing the join and any chunk size. This is the wire-path
//! extension of `promoted_backup_is_bit_identical_to_primary` in
//! `specsync-ps`: every frame crosses the codec, not just the store API.

use proptest::prelude::*;
use specsync_net::{decode_frame, encode_frame, FailoverControl, ShardHost, WireMessage};
use specsync_ps::{ParameterStore, PushPayload, ReplicatedStore, StoreCheckpoint};
use specsync_simnet::WorkerId;
use specsync_tensor::SparseGrad;

const WORKERS: usize = 3;
const JOURNAL_CAP: usize = 8;

/// One push in the generated workload: which worker, dense or sparse,
/// and the gradient magnitude.
#[derive(Debug, Clone)]
struct Op {
    worker: usize,
    sparse: bool,
    value: f32,
}

fn arb_op() -> impl Strategy<Value = Op> {
    (0..WORKERS, any::<bool>(), -4.0f32..4.0).prop_map(|(worker, sparse, value)| Op {
        worker,
        sparse,
        value,
    })
}

fn op_frame(op: &Op, dim: usize, index: usize) -> WireMessage {
    let payload = if op.sparse {
        let mut g = SparseGrad::new();
        g.reset(dim);
        g.add(index % dim, op.value);
        g.add((index + 1) % dim, op.value * 0.5);
        g.finish();
        PushPayload::Sparse(g)
    } else {
        PushPayload::Dense(vec![op.value; dim])
    };
    WireMessage::Push {
        worker: WorkerId::new(op.worker),
        payload,
    }
}

/// Round-trips a frame through the real codec, as the socket would.
fn over_the_wire(msg: &WireMessage) -> WireMessage {
    let bytes = encode_frame(msg).expect("rejoin frames fit the payload limit");
    decode_frame(&bytes).expect("own encoding must decode")
}

fn fresh_host(dim: usize) -> ShardHost {
    let store = ParameterStore::new(vec![0.0; dim], WORKERS).with_momentum(0.9);
    ShardHost::new(ReplicatedStore::from_store(store, JOURNAL_CAP))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn rejoined_backup_is_bit_identical_to_primary(
        dim in 2usize..10,
        pre in proptest::collection::vec(arb_op(), 0..24),
        post in proptest::collection::vec(arb_op(), 0..12),
        chunk_bytes in 1usize..96,
        redeliver in any::<bool>(),
    ) {
        let mut primary = fresh_host(dim);
        for (i, op) in pre.iter().enumerate() {
            primary.handle(op_frame(op, dim, i)).expect("primary accepts pushes");
        }

        // --- Snapshot transfer: chunked checkpoint frames, reassembled.
        let (checkpoint, tail) = primary.replica_mut().rejoin_snapshot();
        let encoded = checkpoint.encode();
        let total = encoded.chunks(chunk_bytes).count() as u64;
        let mut streamed = Vec::new();
        for (index, data) in encoded.chunks(chunk_bytes).enumerate() {
            let frame = over_the_wire(&WireMessage::Failover(FailoverControl::SnapshotChunk {
                index: index as u64,
                total,
                data: data.to_vec(),
            }));
            let WireMessage::Failover(FailoverControl::SnapshotChunk { index: got, data, .. }) =
                frame
            else {
                panic!("chunk frame changed shape over the wire");
            };
            prop_assert_eq!(got, streamed.len() as u64 / chunk_bytes as u64);
            streamed.extend_from_slice(&data);
        }
        let restored = ParameterStore::restore(
            StoreCheckpoint::decode(&streamed).expect("streamed checkpoint decodes"),
        )
        .expect("streamed checkpoint restores");
        let mut joiner = fresh_host(dim);
        joiner.install_store(ReplicatedStore::from_store(restored, JOURNAL_CAP));

        // --- Journal-tail catch-up: RelayPush frames replayed in order.
        for entry in &tail {
            let frame = over_the_wire(&WireMessage::RelayPush {
                seq: entry.seq,
                worker: entry.worker,
                lr: entry.lr,
                payload: entry.payload.clone(),
            });
            let ack = joiner.handle(frame).expect("tail entries replay cleanly");
            let acked = matches!(ack, Some(WireMessage::PushAck { .. }));
            prop_assert!(acked, "a replayed tail entry must be acked");
        }
        prop_assert_eq!(
            joiner.replica().version(),
            primary.replica().version(),
            "catch-up must reach parity before live relays start"
        );

        // --- Live pushes racing the join: write-ahead relay (backup holds
        // the push before the primary applies it), with optional
        // at-least-once re-delivery that must not double-apply.
        for (i, op) in post.iter().enumerate() {
            let push = op_frame(op, dim, pre.len() + i);
            let relay = over_the_wire(
                &primary.tag_relay(&push).expect("pushes are relayable"),
            );
            joiner.handle(relay.clone()).expect("joiner applies the relay");
            if redeliver {
                let before = joiner.replica().version();
                joiner.handle(relay).expect("re-delivery is acked");
                prop_assert_eq!(
                    joiner.replica().version(),
                    before,
                    "a re-delivered relay must not re-apply"
                );
            }
            primary.handle(push).expect("primary applies after the relay");
        }

        prop_assert_eq!(joiner.replica().version(), primary.replica().version());
        let want: Vec<u32> = primary
            .replica_mut()
            .params()
            .iter()
            .map(|p| p.to_bits())
            .collect();
        let got: Vec<u32> = joiner
            .replica_mut()
            .params()
            .iter()
            .map(|p| p.to_bits())
            .collect();
        prop_assert_eq!(got, want, "the rejoined backup must be bit-identical");
    }
}
