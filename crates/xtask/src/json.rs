//! Machine-readable diagnostics (`--format json`) and the baseline
//! filter (`--baseline <file>`).
//!
//! One diagnostic per line, keys always in the same order:
//!
//! ```text
//! {"lint":"lock-order","level":"deny","file":"crates/ps/src/store.rs","line":42,"message":"..."}
//! ```
//!
//! A baseline file is exactly that output saved to disk (blank lines and
//! `#` comments allowed), so bootstrapping is
//! `cargo xtask analyze --format json > analyze-baseline.jsonl`.
//! Matching deliberately ignores `line` — diagnostics drift with
//! unrelated edits; `(lint, file, message)` identifies the finding.
//!
//! Hand-rolled (de)serialization: xtask is dependency-free by design.

use std::collections::BTreeSet;

use crate::lints::Diagnostic;

/// Renders one diagnostic as a single JSON line (no trailing newline).
pub fn to_json_line(d: &Diagnostic) -> String {
    let level = if d.lint.is_deny() { "deny" } else { "advisory" };
    format!(
        "{{\"lint\":{},\"level\":{},\"file\":{},\"line\":{},\"message\":{}}}",
        escape(d.lint.name()),
        escape(level),
        escape(&d.file),
        d.line,
        escape(&d.message)
    )
}

/// JSON string escaping per RFC 8259 (quotes, backslash, control chars).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A set of known diagnostics to ignore, keyed by `(lint, file, message)`.
#[derive(Debug, Default)]
pub struct Baseline {
    keys: BTreeSet<(String, String, String)>,
}

impl Baseline {
    /// Parses baseline text (JSONL as emitted by `--format json`).
    /// Malformed entries are hard errors — a baseline that silently
    /// matches nothing would let regressions through.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut keys = BTreeSet::new();
        for (n, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let entry = (
                json_string_field(line, "lint")
                    .ok_or_else(|| format!("baseline line {}: missing `lint`", n + 1))?,
                json_string_field(line, "file")
                    .ok_or_else(|| format!("baseline line {}: missing `file`", n + 1))?,
                json_string_field(line, "message")
                    .ok_or_else(|| format!("baseline line {}: missing `message`", n + 1))?,
            );
            keys.insert(entry);
        }
        Ok(Baseline { keys })
    }

    pub fn len(&self) -> usize {
        self.keys.len()
    }

    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    pub fn contains(&self, d: &Diagnostic) -> bool {
        self.keys
            .contains(&(d.lint.name().to_string(), d.file.clone(), d.message.clone()))
    }
}

/// Extracts the string value of `"key":"..."` from one JSON line,
/// unescaping as it goes. Tolerates whitespace after the colon but
/// expects string-typed values (all baseline keys are strings).
fn json_string_field(line: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\"");
    let mut search_from = 0;
    loop {
        let at = line[search_from..].find(&marker)? + search_from;
        let mut rest = line[at + marker.len()..].trim_start();
        if let Some(r) = rest.strip_prefix(':') {
            rest = r.trim_start();
            let body = rest.strip_prefix('"')?;
            return unescape_prefix(body);
        }
        // A value that *contains* `"key"` — keep searching.
        search_from = at + marker.len();
    }
}

/// Unescapes a JSON string up to its closing quote.
fn unescape_prefix(body: &str) -> Option<String> {
    let mut out = String::new();
    let mut chars = body.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                '/' => out.push('/'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'b' => out.push('\u{8}'),
                'f' => out.push('\u{c}'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lints::Lint;

    fn diag(lint: Lint, file: &str, line: usize, message: &str) -> Diagnostic {
        Diagnostic {
            lint,
            file: file.to_string(),
            line,
            message: message.to_string(),
        }
    }

    #[test]
    fn json_line_has_stable_key_order() {
        let d = diag(Lint::LockOrder, "a.rs", 7, "cycle `x` and `y`");
        assert_eq!(
            to_json_line(&d),
            r#"{"lint":"lock-order","level":"deny","file":"a.rs","line":7,"message":"cycle `x` and `y`"}"#
        );
    }

    #[test]
    fn json_escapes_quotes_and_backslashes() {
        let d = diag(Lint::NoPanic, "a\\b.rs", 1, "say \"no\"\n");
        let line = to_json_line(&d);
        assert!(line.contains(r#""file":"a\\b.rs""#), "{line}");
        assert!(line.contains(r#""message":"say \"no\"\n""#), "{line}");
        // And it round-trips through the baseline parser.
        let b = Baseline::parse(&line).unwrap();
        assert!(b.contains(&d));
    }

    #[test]
    fn baseline_matches_ignore_line_numbers() {
        let d = diag(
            Lint::VirtualTime,
            "a.rs",
            10,
            "`Instant` is wall-clock state",
        );
        let b = Baseline::parse(&to_json_line(&d)).unwrap();
        let drifted = diag(
            Lint::VirtualTime,
            "a.rs",
            99,
            "`Instant` is wall-clock state",
        );
        assert!(b.contains(&drifted));
        let other = diag(
            Lint::VirtualTime,
            "b.rs",
            10,
            "`Instant` is wall-clock state",
        );
        assert!(!b.contains(&other));
    }

    #[test]
    fn baseline_skips_blanks_and_comments() {
        let text = "# known findings\n\n{\"lint\":\"no-panic\",\"level\":\"deny\",\"file\":\"a.rs\",\"line\":1,\"message\":\"m\"}\n";
        let b = Baseline::parse(text).unwrap();
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn malformed_baseline_lines_are_errors() {
        assert!(Baseline::parse("{\"file\":\"a.rs\"}").is_err());
        assert!(Baseline::parse("not json at all").is_err());
    }
}
