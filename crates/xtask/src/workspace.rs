//! Workspace layout: which files get which lints.
//!
//! Classification is by crate, mirroring the architecture in DESIGN.md:
//!
//! * **Deterministic** — `simnet`, `tensor`, `ml`, `ps`, `sync`, `core`,
//!   `telemetry`, `cluster`, `runtime`: everything the virtual-time
//!   simulator executes.
//!   Same seed must mean bit-identical traces, so all four lint classes
//!   apply. (`runtime` is real-threaded by design, but its wall-clock use
//!   is confined to the annotated `ClockSource` impl — everything else in
//!   the crate must stay clock-free. `telemetry` timestamps come from the
//!   host's injected clock, never an ambient one — the same-seed
//!   byte-identical-trace guarantee depends on it.)
//! * **Library** — the facade crate (`src/`) and `net`: `no-panic` only.
//!   The wire layer is wall-clock and socket-bound by nature (its sleeps
//!   and I/O are the product), so the determinism lints do not apply —
//!   but the semantic passes (lock-order, blocking-under-lock,
//!   event-exhaustiveness over `WireMessage`) still do.
//! * **Harness** — `bench` (experiment binaries + their helpers) and
//!   `xtask` itself: exempt. These are leaf executables whose panics and
//!   env-var switches never run inside a simulation.
//!
//! Within a crate, `tests/`, `benches/`, `examples/` and `src/bin/` are
//! not scanned, and `#[cfg(test)]` / `#[test]` items inside `src/` are
//! exempted by the lint driver itself.

use std::fs;
use std::path::{Path, PathBuf};

/// Which rule set applies to a crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrateClass {
    /// All lints: virtual-time, ordered-iteration, no-panic, f32-accumulation.
    Deterministic,
    /// `no-panic` only.
    Library,
    /// Not scanned.
    Harness,
}

/// Classifies a workspace crate by directory name.
pub fn classify(crate_name: &str) -> CrateClass {
    match crate_name {
        "simnet" | "tensor" | "ml" | "ps" | "sync" | "core" | "telemetry" | "cluster"
        | "runtime" => CrateClass::Deterministic,
        "bench" | "xtask" => CrateClass::Harness,
        "net" => CrateClass::Library,
        _ => CrateClass::Library,
    }
}

/// One file scheduled for analysis.
#[derive(Debug)]
pub struct FileToCheck {
    /// Absolute path on disk.
    pub path: PathBuf,
    /// Path relative to the workspace root, for diagnostics.
    pub label: String,
    pub class: CrateClass,
    /// Event-exhaustiveness only (the designated trace summarizer).
    pub event_only: bool,
}

/// Harness files that still join the semantic model for the
/// event-exhaustiveness pass: the trace summarizer must account for
/// every `telemetry::Event` variant even though, as a leaf binary, it is
/// exempt from the scanner lints.
const SUMMARIZER_EXTRAS: &[&str] = &["crates/bench/src/bin/trace.rs"];

/// Collects every `.rs` file the pass covers, sorted by label so output
/// and CI logs are stable.
pub fn collect_files(root: &Path) -> std::io::Result<Vec<FileToCheck>> {
    let mut out = Vec::new();

    // Member crates.
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let entry = entry?;
            if !entry.file_type()?.is_dir() {
                continue;
            }
            let name = entry.file_name().to_string_lossy().into_owned();
            let class = classify(&name);
            if class == CrateClass::Harness {
                continue;
            }
            let src = entry.path().join("src");
            if src.is_dir() {
                walk_rs(&src, root, class, &mut out)?;
            }
        }
    }

    // The facade crate at the workspace root.
    let facade_src = root.join("src");
    if facade_src.is_dir() {
        walk_rs(&facade_src, root, CrateClass::Library, &mut out)?;
    }

    // Designated summarizers (event-exhaustiveness only).
    for label in SUMMARIZER_EXTRAS {
        let path = root.join(label);
        if path.is_file() {
            out.push(FileToCheck {
                path,
                label: (*label).to_string(),
                class: CrateClass::Harness,
                event_only: true,
            });
        }
    }

    out.sort_by(|a, b| a.label.cmp(&b.label));
    Ok(out)
}

fn walk_rs(
    dir: &Path,
    root: &Path,
    class: CrateClass,
    out: &mut Vec<FileToCheck>,
) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if entry.file_type()?.is_dir() {
            // `src/bin/` targets are executables: panicking and reading the
            // environment at the top level is their job.
            if path.file_name().is_some_and(|n| n == "bin") {
                continue;
            }
            walk_rs(&path, root, class, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let label = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .into_owned();
            out.push(FileToCheck {
                path,
                label,
                class,
                event_only: false,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_set_matches_design() {
        for c in [
            "simnet",
            "tensor",
            "ml",
            "ps",
            "sync",
            "core",
            "telemetry",
            "cluster",
            "runtime",
        ] {
            assert_eq!(classify(c), CrateClass::Deterministic, "{c}");
        }
        assert_eq!(classify("bench"), CrateClass::Harness);
        assert_eq!(classify("xtask"), CrateClass::Harness);
        assert_eq!(classify("net"), CrateClass::Library);
        assert_eq!(classify("something-else"), CrateClass::Library);
    }
}
