//! A lightweight item-level parser on top of the [`lexer`](crate::lexer).
//!
//! The semantic passes (DESIGN.md §15) need more than tokens but far less
//! than `syn`: which functions exist, which impl block they live in, what
//! each body *does* in four narrow respects — lock-guard acquisitions,
//! blocking operations, calls to other workspace functions, and
//! `Enum::Variant` path references (plus `match` regions and their
//! wildcard arms). Everything else in a body is skipped.
//!
//! ### Guard model
//!
//! A guard born from `.lock()` / `.read()` / `.write()` (empty argument
//! list, so `io::Write::write(buf)` never matches) is live:
//!
//! * bound by a `let` — until its enclosing block closes or `drop(name)`;
//! * as a `match` scrutinee or `if let` / `while let` / `for` head — until
//!   the construct's block closes (Rust extends those temporaries);
//! * in a plain `if` / `while` condition — until the condition's `{`;
//! * in any other expression statement — until the statement's `;`.
//!
//! This over-approximates `let` bindings dropped early by NLL-style dead
//! scopes and under-approximates guards returned from helper functions;
//! both are documented pass contracts, not bugs.

use std::collections::BTreeSet;

use crate::workspace::CrateClass;

/// One parsed source file, ready for model building.
#[derive(Debug)]
pub struct ParsedFile {
    /// Workspace-relative label used in diagnostics.
    pub label: String,
    pub class: CrateClass,
    /// When set, the file only participates in the event-exhaustiveness
    /// pass (the designated trace summarizer rides along this way).
    pub event_only: bool,
    pub enums: Vec<EnumDef>,
    pub functions: Vec<FnDef>,
}

/// An `enum` item and its variants.
#[derive(Debug)]
pub struct EnumDef {
    pub name: String,
    pub line: usize,
    /// `(variant name, 1-based line)` in declaration order.
    pub variants: Vec<(String, usize)>,
}

/// How a call site names its callee — this decides resolution precision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Callee {
    /// `foo(..)` or `module::foo(..)`: resolves to free functions named
    /// `foo` anywhere in the workspace.
    Bare(String),
    /// `self.foo(..)` / `Self::foo(..)`: resolves within the enclosing
    /// impl type's methods.
    SelfMethod(String),
    /// `Type::foo(..)`: resolves to `Type`'s methods.
    TypeMethod(String, String),
    /// `expr.foo(..)` on a non-`self` receiver: never resolved (we have
    /// no types). A documented under-approximation.
    Unresolved(String),
}

/// One interesting operation inside a function body, in source order.
#[derive(Debug)]
pub enum Op {
    /// A lock guard was acquired. `held` is the set of classes already
    /// live at this point (excluding the new one).
    Acquire {
        class: String,
        line: usize,
        held: Vec<String>,
    },
    /// A blocking primitive was reached directly.
    Block {
        what: &'static str,
        line: usize,
        held: Vec<String>,
    },
    /// A call that may resolve to another workspace function.
    Call {
        callee: Callee,
        line: usize,
        held: Vec<String>,
    },
}

/// A `match` whose arm heads name variants of some enum.
#[derive(Debug)]
pub struct MatchInfo {
    pub line: usize,
    /// Variants referenced anywhere inside the match region, per enum.
    pub refs: Vec<(String, String)>,
    /// Variants referenced at arm-head depth, per enum (what the match
    /// itself dispatches on).
    pub arm_refs: Vec<(String, String)>,
    /// Line of a `_ =>` or bare-binding catch-all arm, if present.
    pub wildcard_line: Option<usize>,
}

/// One function (or method) with its extracted body facts.
#[derive(Debug)]
pub struct FnDef {
    /// Bare name, e.g. `record`.
    pub name: String,
    /// Qualified name for messages, e.g. `JsonlSink::record`.
    pub qual: String,
    /// The impl block's self type, if any.
    pub self_type: Option<String>,
    /// The implemented trait, when inside `impl Trait for Type`.
    pub trait_name: Option<String>,
    pub line: usize,
    /// Whether the item sits inside a `#[cfg(test)]` / `#[test]` region.
    pub in_test: bool,
    pub ops: Vec<Op>,
    /// All `Enum::Variant`-shaped path references in the body (enum names
    /// are filtered against parsed enums later).
    pub path_refs: Vec<(String, String, usize)>,
    pub matches: Vec<MatchInfo>,
}

// ---------------------------------------------------------------------------
// Tokenization

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tok<'a> {
    Ident(&'a str),
    Punct(u8),
}

#[derive(Debug, Clone, Copy)]
struct Token<'a> {
    tok: Tok<'a>,
    line: usize,
}

/// Tokenizes sanitized source into identifiers and single-byte punctuation,
/// skipping whitespace and numeric literals (like [`lexer::idents`]).
fn tokenize(sanitized: &str) -> Vec<Token<'_>> {
    let bytes = sanitized.as_bytes();
    let mut out = Vec::with_capacity(sanitized.len() / 4);
    let mut line = 1usize;
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if b.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if b.is_ascii_alphabetic() || b == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            out.push(Token {
                tok: Tok::Ident(&sanitized[start..i]),
                line,
            });
            continue;
        }
        if b.is_ascii_digit() {
            while i < bytes.len()
                && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'.')
            {
                if bytes[i] == b'.' && i + 1 < bytes.len() && bytes[i + 1] == b'.' {
                    break;
                }
                i += 1;
            }
            continue;
        }
        if b.is_ascii() {
            out.push(Token {
                tok: Tok::Punct(b),
                line,
            });
        }
        i += 1;
    }
    out
}

// ---------------------------------------------------------------------------
// Item parsing

struct Parser<'a> {
    toks: &'a [Token<'a>],
    pos: usize,
    test_regions: &'a [(usize, usize)],
    out_fns: Vec<FnDef>,
    out_enums: Vec<EnumDef>,
}

/// Blocking primitives reached through a method call (`.name(`).
const BLOCKING_METHODS: &[(&str, &str)] = &[
    ("join", "JoinHandle::join"),
    ("send", "channel send"),
    ("recv", "channel recv"),
    ("recv_timeout", "channel recv_timeout"),
    ("write_all", "file/socket write"),
    ("write_fmt", "file/socket write"),
    ("read_to_string", "file/socket read"),
    ("read_to_end", "file/socket read"),
    ("read_exact", "file/socket read"),
    ("flush", "writer flush"),
    ("sync_all", "file sync"),
    ("sync_data", "file sync"),
];

/// Blocking primitives reached through a `Qualifier::name` path call.
const BLOCKING_PATHS: &[(&str, &str)] = &[
    ("fs", "std::fs i/o"),
    ("File", "file open/create"),
    ("OpenOptions", "file open"),
    ("TcpStream", "socket i/o"),
    ("TcpListener", "socket i/o"),
    ("UdpSocket", "socket i/o"),
    // The chaos shims wrap sockets (and sleep on purpose): calling them
    // under a lock blocks exactly like the raw socket would.
    ("ChaosStream", "socket i/o (chaos shim)"),
    ("ChaosListener", "socket accept (chaos shim)"),
    ("Instant", "wall-clock read"),
    ("SystemTime", "wall-clock read"),
];

const KEYWORDS: &[&str] = &[
    "as", "async", "await", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern",
    "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "static", "struct", "super", "trait", "type", "unsafe", "use", "where", "while",
];

impl<'a> Parser<'a> {
    fn peek(&self, k: usize) -> Option<Tok<'a>> {
        self.toks.get(self.pos + k).map(|t| t.tok)
    }

    fn line_at(&self, pos: usize) -> usize {
        self.toks
            .get(pos.min(self.toks.len().saturating_sub(1)))
            .map_or(1, |t| t.line)
    }

    fn in_test(&self, line: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(a, b)| line >= a && line <= b)
    }

    /// Advances past a balanced `<...>` group if one starts here. Angle
    /// brackets in generics never contain stray `<`/`>` operators at item
    /// position, which is the only place this is called.
    fn skip_generics(&mut self) {
        if self.peek(0) != Some(Tok::Punct(b'<')) {
            return;
        }
        let mut depth = 0i32;
        while let Some(t) = self.peek(0) {
            match t {
                Tok::Punct(b'<') => depth += 1,
                Tok::Punct(b'>') => {
                    depth -= 1;
                    if depth <= 0 {
                        self.pos += 1;
                        return;
                    }
                }
                // `->` inside a generic bound (`Fn() -> T`): the `-`
                // guards the `>` from closing the group.
                Tok::Punct(b'-') if self.peek(1) == Some(Tok::Punct(b'>')) => {
                    self.pos += 1;
                }
                _ => {}
            }
            self.pos += 1;
        }
    }

    /// Advances past one balanced bracket group starting at `open`.
    fn skip_balanced(&mut self, open: u8, close: u8) {
        let mut depth = 0i32;
        while let Some(t) = self.peek(0) {
            if t == Tok::Punct(open) {
                depth += 1;
            } else if t == Tok::Punct(close) {
                depth -= 1;
                if depth == 0 {
                    self.pos += 1;
                    return;
                }
            }
            self.pos += 1;
        }
    }

    /// Parses items until `end` (exclusive) with the given impl context.
    fn parse_items(&mut self, end: usize, self_type: Option<&str>, trait_name: Option<&str>) {
        while self.pos < end {
            match self.peek(0) {
                Some(Tok::Ident("impl")) => {
                    self.pos += 1;
                    self.skip_generics();
                    // First path segment: trait name or self type.
                    let mut first = None;
                    let mut for_type = None;
                    let mut seen_for = false;
                    while self.pos < end {
                        match self.peek(0) {
                            Some(Tok::Punct(b'{')) => break,
                            Some(Tok::Ident("for")) => seen_for = true,
                            Some(Tok::Ident(id)) if !KEYWORDS.contains(&id) => {
                                if seen_for {
                                    if for_type.is_none() {
                                        for_type = Some(id.to_string());
                                    }
                                } else if first.is_none() {
                                    first = Some(id.to_string());
                                }
                            }
                            Some(Tok::Punct(b'<')) => {
                                self.skip_generics();
                                continue;
                            }
                            _ => {}
                        }
                        self.pos += 1;
                    }
                    let (ty, tr) = match (for_type, first) {
                        (Some(ty), tr) => (Some(ty), tr),
                        (None, ty) => (ty, None),
                    };
                    let body_end = self.block_extent(end);
                    self.pos += 1; // the `{`
                    self.parse_items(body_end, ty.as_deref(), tr.as_deref());
                }
                Some(Tok::Ident("trait")) => {
                    self.pos += 1;
                    let tr = match self.peek(0) {
                        Some(Tok::Ident(id)) => Some(id.to_string()),
                        _ => None,
                    };
                    while self.pos < end && self.peek(0) != Some(Tok::Punct(b'{')) {
                        // A `;`-terminated form (`trait A = B;`) has no body.
                        if self.peek(0) == Some(Tok::Punct(b';')) {
                            break;
                        }
                        self.pos += 1;
                    }
                    if self.peek(0) == Some(Tok::Punct(b'{')) {
                        let body_end = self.block_extent(end);
                        self.pos += 1;
                        self.parse_items(body_end, None, tr.as_deref());
                    }
                }
                Some(Tok::Ident("mod")) => {
                    self.pos += 1;
                    // `mod name;` or `mod name { items }`; items inside are
                    // parsed in the outer context.
                    while self.pos < end
                        && !matches!(self.peek(0), Some(Tok::Punct(b'{') | Tok::Punct(b';')))
                    {
                        self.pos += 1;
                    }
                    if self.peek(0) == Some(Tok::Punct(b'{')) {
                        self.pos += 1; // descend; the closing brace is inert
                    } else {
                        self.pos += 1;
                    }
                }
                Some(Tok::Ident("enum")) => {
                    self.pos += 1;
                    self.parse_enum(end);
                }
                Some(Tok::Ident("fn")) => {
                    self.parse_fn(end, self_type, trait_name);
                }
                Some(Tok::Ident("struct")) | Some(Tok::Ident("union")) => {
                    // Skip to the `;` or the end of the braced body so field
                    // types never read as items.
                    self.pos += 1;
                    while self.pos < end {
                        match self.peek(0) {
                            Some(Tok::Punct(b';')) => {
                                self.pos += 1;
                                break;
                            }
                            Some(Tok::Punct(b'{')) => {
                                self.skip_balanced(b'{', b'}');
                                break;
                            }
                            Some(Tok::Punct(b'(')) => {
                                self.skip_balanced(b'(', b')');
                                continue;
                            }
                            _ => self.pos += 1,
                        }
                    }
                }
                _ => self.pos += 1,
            }
        }
        self.pos = self.pos.max(end);
    }

    /// From a position at or before a `{`, returns the index of its
    /// matching `}` (bounded by `end`), leaving `pos` at the `{`.
    fn block_extent(&mut self, end: usize) -> usize {
        while self.pos < end && self.peek(0) != Some(Tok::Punct(b'{')) {
            self.pos += 1;
        }
        let mut depth = 0i32;
        let mut k = self.pos;
        while k < end {
            match self.toks[k].tok {
                Tok::Punct(b'{') => depth += 1,
                Tok::Punct(b'}') => {
                    depth -= 1;
                    if depth == 0 {
                        return k;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        end
    }

    fn parse_enum(&mut self, end: usize) {
        let (name, line) = match self.peek(0) {
            Some(Tok::Ident(id)) => (id.to_string(), self.line_at(self.pos)),
            _ => return,
        };
        self.pos += 1;
        self.skip_generics();
        while self.pos < end && !matches!(self.peek(0), Some(Tok::Punct(b'{') | Tok::Punct(b';'))) {
            self.pos += 1;
        }
        if self.peek(0) != Some(Tok::Punct(b'{')) {
            return;
        }
        let body_end = self.block_extent(end);
        self.pos += 1;
        let mut variants = Vec::new();
        let mut expecting = true;
        while self.pos < body_end {
            match self.peek(0) {
                Some(Tok::Punct(b'#')) => {
                    // Attribute: skip `#[ ... ]`.
                    self.pos += 1;
                    if self.peek(0) == Some(Tok::Punct(b'[')) {
                        self.skip_balanced(b'[', b']');
                    }
                }
                Some(Tok::Ident(id)) if expecting => {
                    variants.push((id.to_string(), self.line_at(self.pos)));
                    expecting = false;
                    self.pos += 1;
                }
                Some(Tok::Punct(b'{')) => self.skip_balanced(b'{', b'}'),
                Some(Tok::Punct(b'(')) => self.skip_balanced(b'(', b')'),
                Some(Tok::Punct(b',')) => {
                    expecting = true;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        self.pos = body_end + 1;
        self.out_enums.push(EnumDef {
            name,
            line,
            variants,
        });
    }

    fn parse_fn(&mut self, end: usize, self_type: Option<&str>, trait_name: Option<&str>) {
        let fn_line = self.line_at(self.pos);
        self.pos += 1; // `fn`
        let name = match self.peek(0) {
            Some(Tok::Ident(id)) => id.to_string(),
            _ => return,
        };
        self.pos += 1;
        self.skip_generics();
        if self.peek(0) == Some(Tok::Punct(b'(')) {
            self.skip_balanced(b'(', b')');
        }
        // Return type / where clause: the body `{` is the first brace at
        // bracket depth zero; a `;` first means a bodiless declaration.
        loop {
            match self.peek(0) {
                None => return,
                Some(Tok::Punct(b';')) => {
                    self.pos += 1;
                    return;
                }
                Some(Tok::Punct(b'{')) => break,
                Some(Tok::Punct(b'(')) => self.skip_balanced(b'(', b')'),
                Some(Tok::Punct(b'<')) => self.skip_generics(),
                Some(Tok::Punct(b'[')) => self.skip_balanced(b'[', b']'),
                _ => self.pos += 1,
            }
            if self.pos >= end {
                return;
            }
        }
        let body_end = self.block_extent(end);
        let body_start = self.pos;
        let qual = match self_type {
            Some(ty) => format!("{ty}::{name}"),
            None => name.clone(),
        };
        let mut fd = FnDef {
            name,
            qual,
            self_type: self_type.map(str::to_string),
            trait_name: trait_name.map(str::to_string),
            line: fn_line,
            in_test: self.in_test(fn_line),
            ops: Vec::new(),
            path_refs: Vec::new(),
            matches: Vec::new(),
        };
        let mut walker = BodyWalker::new(self.toks, body_start, body_end, &mut fd, self_type);
        walker.walk();
        self.out_fns.push(fd);
        self.pos = body_end + 1;
    }
}

// ---------------------------------------------------------------------------
// Body walking

/// What ends a live guard.
#[derive(Debug, Clone, PartialEq)]
enum GuardEnd {
    /// `let`-bound: dies when brace depth drops below this.
    DepthBelow(i32),
    /// Statement temporary: dies at the next `;` at its depth, or at a
    /// plain-`if`/`while` condition's `{`.
    Semi { depth: i32 },
    /// `match`/`if let`/`while let`/`for` head temporary: becomes
    /// `DepthBelow` once the construct's block opens.
    PendingBlock,
}

#[derive(Debug, Clone)]
struct Guard {
    class: String,
    name: Option<String>,
    end: GuardEnd,
}

#[derive(Debug)]
struct OpenMatch {
    line: usize,
    /// Brace depth of the match's own `{`; arm heads live at depth + 1.
    open_depth: i32,
    refs: BTreeSet<(String, String)>,
    arm_refs: BTreeSet<(String, String)>,
    wildcard_line: Option<usize>,
    pending_open: bool,
}

/// One of Rust's statement-head keywords that extends scrutinee/head
/// temporaries to the full construct.
fn extends_temporaries(kw: &str) -> bool {
    matches!(kw, "match" | "for")
}

struct BodyWalker<'a, 'f> {
    toks: &'a [Token<'a>],
    pos: usize,
    end: usize,
    fd: &'f mut FnDef,
    self_type: Option<&'a str>,
    depth: i32,
    guards: Vec<Guard>,
    matches: Vec<OpenMatch>,
    /// Statement-head keyword of the current statement, if interesting.
    stmt_kw: Option<&'a str>,
    /// Whether the current statement began with `let` (incl. `if let`).
    stmt_has_let: bool,
    stmt_depth: i32,
    /// First ident after a statement-opening `let`, for `drop()` matching.
    stmt_let_name: Option<String>,
    at_stmt_start: bool,
}

impl<'a, 'f> BodyWalker<'a, 'f> {
    fn new(
        toks: &'a [Token<'a>],
        body_start: usize,
        body_end: usize,
        fd: &'f mut FnDef,
        self_type: Option<&'a str>,
    ) -> Self {
        BodyWalker {
            toks,
            pos: body_start,
            end: body_end,
            fd,
            self_type,
            depth: 0,
            guards: Vec::new(),
            matches: Vec::new(),
            stmt_kw: None,
            stmt_has_let: false,
            stmt_depth: 0,
            stmt_let_name: None,
            at_stmt_start: false,
        }
    }

    fn tok(&self, k: isize) -> Option<Tok<'a>> {
        let idx = self.pos as isize + k;
        if idx < 0 {
            return None;
        }
        self.toks.get(idx as usize).map(|t| t.tok)
    }

    fn line(&self) -> usize {
        self.toks.get(self.pos).map_or(1, |t| t.line)
    }

    fn held(&self) -> Vec<String> {
        let mut seen = BTreeSet::new();
        self.guards
            .iter()
            .filter(|g| seen.insert(g.class.clone()))
            .map(|g| g.class.clone())
            .collect()
    }

    fn begin_statement(&mut self) {
        self.at_stmt_start = true;
        self.stmt_kw = None;
        self.stmt_has_let = false;
        self.stmt_let_name = None;
        self.stmt_depth = self.depth;
    }

    fn walk(&mut self) {
        self.begin_statement();
        while self.pos <= self.end {
            let t = match self.toks.get(self.pos) {
                Some(t) => t.tok,
                None => break,
            };
            match t {
                Tok::Punct(b'{') => {
                    self.depth += 1;
                    // A pending match/for head temporary binds to this block.
                    for g in &mut self.guards {
                        if g.end == GuardEnd::PendingBlock {
                            g.end = GuardEnd::DepthBelow(self.depth);
                        }
                    }
                    for m in &mut self.matches {
                        if m.pending_open {
                            m.pending_open = false;
                            m.open_depth = self.depth;
                        }
                    }
                    // Plain `if`/`while` condition temporaries die here.
                    let kw = self.stmt_kw;
                    if matches!(kw, Some("if" | "while")) && !self.stmt_has_let {
                        let d = self.stmt_depth;
                        self.guards
                            .retain(|g| !matches!(g.end, GuardEnd::Semi { depth } if depth == d));
                    }
                    self.pos += 1;
                    self.begin_statement();
                    continue;
                }
                Tok::Punct(b'}') => {
                    self.depth -= 1;
                    let d = self.depth;
                    self.guards.retain(|g| match g.end {
                        GuardEnd::DepthBelow(bind) => d >= bind,
                        GuardEnd::Semi { depth } => d >= depth,
                        GuardEnd::PendingBlock => true,
                    });
                    self.close_matches();
                    self.pos += 1;
                    self.begin_statement();
                    continue;
                }
                Tok::Punct(b';') => {
                    let d = self.depth;
                    self.guards
                        .retain(|g| !matches!(g.end, GuardEnd::Semi { depth } if depth >= d));
                    self.pos += 1;
                    self.begin_statement();
                    continue;
                }
                Tok::Ident(id) => {
                    if self.at_stmt_start {
                        if self.stmt_kw.is_none()
                            && matches!(id, "let" | "if" | "while" | "match" | "for" | "else")
                        {
                            self.stmt_kw = Some(id);
                            if id == "let" {
                                self.stmt_has_let = true;
                            }
                        } else {
                            self.at_stmt_start = false;
                        }
                        // `if let` / `while let`.
                        if id == "let" && matches!(self.stmt_kw, Some("if" | "while")) {
                            self.stmt_has_let = true;
                        }
                    } else if id == "let" && matches!(self.stmt_kw, Some("if" | "while")) {
                        self.stmt_has_let = true;
                    }
                    if id == "match" {
                        self.matches.push(OpenMatch {
                            line: self.line(),
                            open_depth: 0,
                            refs: BTreeSet::new(),
                            arm_refs: BTreeSet::new(),
                            wildcard_line: None,
                            pending_open: true,
                        });
                    }
                    if self.stmt_has_let
                        && self.stmt_let_name.is_none()
                        && id != "let"
                        && id != "mut"
                    {
                        self.stmt_let_name = Some(id.to_string());
                    }
                    self.handle_ident(id);
                    self.pos += 1;
                    continue;
                }
                _ => {
                    if t != Tok::Punct(b'#') {
                        self.at_stmt_start = false;
                    }
                    self.pos += 1;
                }
            }
        }
        self.depth = -1;
        self.close_matches();
    }

    fn close_matches(&mut self) {
        while let Some(m) = self.matches.last() {
            if !m.pending_open && self.depth < m.open_depth {
                let m = self.matches.pop().expect("checked non-empty");
                let refs: Vec<_> = m.refs.into_iter().collect();
                // A closing inner match folds its refs into the enclosing
                // regions too: arms of the outer match contain them.
                if let Some(outer) = self.matches.last_mut() {
                    outer.refs.extend(refs.iter().cloned());
                }
                self.fd.matches.push(MatchInfo {
                    line: m.line,
                    refs,
                    arm_refs: m.arm_refs.into_iter().collect(),
                    wildcard_line: m.wildcard_line,
                });
            } else {
                break;
            }
        }
    }

    /// The chain of identifiers joined by `.` ending just before `pos`
    /// (which holds the method name): `self.state.lock` → `[self, state]`.
    fn receiver_chain(&self) -> Vec<&'a str> {
        let mut chain = Vec::new();
        let mut k = -1isize; // token before the method name: expect `.`
        loop {
            if self.tok(k) != Some(Tok::Punct(b'.')) {
                break;
            }
            match self.tok(k - 1) {
                Some(Tok::Ident(id)) => {
                    chain.push(id);
                    k -= 2;
                }
                _ => break,
            }
        }
        chain.reverse();
        chain
    }

    /// Whether the call at `pos` has an empty argument list `()`.
    fn empty_args(&self) -> bool {
        self.tok(1) == Some(Tok::Punct(b'(')) && self.tok(2) == Some(Tok::Punct(b')'))
    }

    fn handle_ident(&mut self, id: &'a str) {
        let line = self.line();

        // `Enum::Variant` path references (uppercase base, path `::`).
        if id.starts_with(char::is_uppercase)
            && self.tok(1) == Some(Tok::Punct(b':'))
            && self.tok(2) == Some(Tok::Punct(b':'))
        {
            if let Some(Tok::Ident(item)) = self.tok(3) {
                if item.starts_with(char::is_uppercase) {
                    self.fd
                        .path_refs
                        .push((id.to_string(), item.to_string(), line));
                    for m in &mut self.matches {
                        if !m.pending_open {
                            m.refs.insert((id.to_string(), item.to_string()));
                        }
                    }
                    if let Some(m) = self.matches.last_mut() {
                        if !m.pending_open && self.depth == m.open_depth {
                            m.arm_refs.insert((id.to_string(), item.to_string()));
                        }
                    }
                }
            }
        }

        // Wildcard / catch-all arms: `_ =>` or a bare binding `other =>`
        // at arm depth of the innermost open match.
        let arrow_next = self.tok(1) == Some(Tok::Punct(b'='))
            && self.tok(2) == Some(Tok::Punct(b'>'))
            && !id.starts_with(char::is_uppercase);
        if arrow_next {
            let prev_ok = matches!(
                self.tok(-1),
                None | Some(Tok::Punct(b',')) | Some(Tok::Punct(b'{')) | Some(Tok::Punct(b'}'))
            );
            if prev_ok {
                if let Some(m) = self.matches.last_mut() {
                    if !m.pending_open && self.depth == m.open_depth {
                        m.wildcard_line.get_or_insert(line);
                    }
                }
            }
        }

        // `drop(name)` releases a named guard.
        if id == "drop" && self.tok(1) == Some(Tok::Punct(b'(')) {
            if let Some(Tok::Ident(victim)) = self.tok(2) {
                self.guards.retain(|g| g.name.as_deref() != Some(victim));
            }
            return;
        }

        let is_method = self.tok(-1) == Some(Tok::Punct(b'.'));
        let is_path =
            self.tok(-1) == Some(Tok::Punct(b':')) && self.tok(-2) == Some(Tok::Punct(b':'));
        let is_call = self.tok(1) == Some(Tok::Punct(b'('));
        let is_macro = self.tok(1) == Some(Tok::Punct(b'!'));
        // Skip definitions (`fn name(` never reaches here: parse_fn owns it)
        // and macro invocations.
        if is_macro {
            return;
        }

        // Guard acquisition: `.lock()` / `.read()` / `.write()` with an
        // empty argument list (RwLock/Mutex take no arguments; io traits
        // always pass a buffer).
        if is_method && matches!(id, "lock" | "read" | "write") && self.empty_args() {
            let chain = self.receiver_chain();
            let class = self.lock_class(&chain, line);
            let held = self.held();
            self.fd.ops.push(Op::Acquire {
                class: class.clone(),
                line,
                held,
            });
            let end = if self.stmt_has_let {
                GuardEnd::DepthBelow(self.stmt_depth)
            } else if matches!(self.stmt_kw, Some(kw) if extends_temporaries(kw)) {
                GuardEnd::PendingBlock
            } else {
                GuardEnd::Semi {
                    depth: self.stmt_depth,
                }
            };
            self.guards.push(Guard {
                class,
                name: self.stmt_let_name.clone(),
                end,
            });
            return;
        }

        // Blocking primitives.
        if is_method && is_call {
            if let Some(&(_, what)) = BLOCKING_METHODS.iter().find(|(m, _)| *m == id) {
                // `join`/`recv` must have empty args to avoid
                // `Vec::join(sep)`-style false positives.
                let ok = match id {
                    "join" | "recv" | "flush" | "sync_all" | "sync_data" => self.empty_args(),
                    _ => true,
                };
                if ok {
                    let held = self.held();
                    self.fd.ops.push(Op::Block { what, line, held });
                    return;
                }
            }
        }
        if id == "sleep" && is_call && !is_method {
            let held = self.held();
            self.fd.ops.push(Op::Block {
                what: "sleep",
                line,
                held,
            });
            return;
        }
        if self.tok(1) == Some(Tok::Punct(b':')) && self.tok(2) == Some(Tok::Punct(b':')) {
            if let Some(&(_, what)) = BLOCKING_PATHS.iter().find(|(p, _)| *p == id) {
                // `fs::write(..)`, `File::create(..)`, `Instant::now()` —
                // only when the next path segment is actually called.
                if let Some(Tok::Ident(_)) = self.tok(3) {
                    if self.tok(4) == Some(Tok::Punct(b'(')) {
                        let held = self.held();
                        self.fd.ops.push(Op::Block { what, line, held });
                        return;
                    }
                }
            }
        }

        // Calls that may resolve into the workspace.
        if is_call && !KEYWORDS.contains(&id) {
            let callee = if is_method {
                let chain = self.receiver_chain();
                if chain.first() == Some(&"self") {
                    Callee::SelfMethod(id.to_string())
                } else {
                    Callee::Unresolved(id.to_string())
                }
            } else if is_path {
                match self.tok(-3) {
                    Some(Tok::Ident("self")) | Some(Tok::Ident("Self")) => {
                        Callee::SelfMethod(id.to_string())
                    }
                    Some(Tok::Ident(q)) if q.starts_with(char::is_uppercase) => {
                        Callee::TypeMethod(q.to_string(), id.to_string())
                    }
                    Some(Tok::Ident(_)) => Callee::Bare(id.to_string()),
                    _ => Callee::Unresolved(id.to_string()),
                }
            } else {
                Callee::Bare(id.to_string())
            };
            let held = self.held();
            self.fd.ops.push(Op::Call { callee, line, held });
        }
    }

    /// Names the lock class for a receiver chain. Fields reached through
    /// `self` are keyed by the impl type so the class is stable across all
    /// the type's methods; everything else is function-local state.
    fn lock_class(&self, chain: &[&str], line: usize) -> String {
        match chain {
            [] => format!("{}::<expr@{line}>", self.fd.qual),
            ["self"] => match self.self_type {
                Some(ty) => format!("{ty}(self)"),
                None => format!("{}::self", self.fd.qual),
            },
            [head @ .., last] => {
                if head.first() == Some(&"self") || *last == "self" {
                    match self.self_type {
                        Some(ty) => format!("{ty}.{last}"),
                        None => format!("{}.{last}", self.fd.qual),
                    }
                } else if head.is_empty() {
                    format!("{}::{last}", self.fd.qual)
                } else {
                    // `a.b.lock()` on a non-self chain: key by the owning
                    // local so `a.x`/`a.y` stay distinct classes.
                    format!("{}::{}.{last}", self.fd.qual, head.join("."))
                }
            }
        }
    }
}

/// Parses one sanitized file into items. `test_regions` comes from
/// [`lexer::test_regions`] over the same sanitized text.
pub fn parse_file(
    label: &str,
    sanitized: &str,
    class: CrateClass,
    event_only: bool,
    test_regions: &[(usize, usize)],
) -> ParsedFile {
    let toks = tokenize(sanitized);
    let mut p = Parser {
        toks: &toks,
        pos: 0,
        test_regions,
        out_fns: Vec::new(),
        out_enums: Vec::new(),
    };
    let end = toks.len();
    p.parse_items(end, None, None);
    ParsedFile {
        label: label.to_string(),
        class,
        event_only,
        enums: p.out_enums,
        functions: p.out_fns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn parse(src: &str) -> ParsedFile {
        let scanned = lexer::scan(src);
        let regions = lexer::test_regions(&scanned.sanitized);
        parse_file(
            "fixture.rs",
            &scanned.sanitized,
            CrateClass::Deterministic,
            false,
            &regions,
        )
    }

    fn fn_named<'a>(pf: &'a ParsedFile, name: &str) -> &'a FnDef {
        pf.functions
            .iter()
            .find(|f| f.name == name)
            .unwrap_or_else(|| panic!("no fn {name}: {:?}", pf.functions))
    }

    #[test]
    fn functions_and_impls_are_qualified() {
        let pf = parse(
            "struct S;\nimpl S { fn a(&self) {} }\nimpl Clone for S { fn clone(&self) -> S { S } }\nfn free() {}\n",
        );
        assert_eq!(fn_named(&pf, "a").qual, "S::a");
        assert_eq!(fn_named(&pf, "clone").trait_name.as_deref(), Some("Clone"));
        assert_eq!(fn_named(&pf, "clone").self_type.as_deref(), Some("S"));
        assert!(fn_named(&pf, "free").self_type.is_none());
    }

    #[test]
    fn enum_variants_are_collected() {
        let pf = parse("pub enum E {\n    A,\n    B { x: u32 },\n    C(u8, u8),\n}\n");
        let e = &pf.enums[0];
        assert_eq!(e.name, "E");
        let names: Vec<&str> = e.variants.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["A", "B", "C"]);
    }

    #[test]
    fn let_guard_is_held_for_the_block() {
        let pf = parse(
            "struct S { m: M }\nimpl S {\n fn f(&self) {\n    let g = self.m.lock();\n    helper();\n }\n fn g(&self) {\n    helper();\n }\n}\n",
        );
        let f = fn_named(&pf, "f");
        let call = f
            .ops
            .iter()
            .find_map(|o| match o {
                Op::Call {
                    callee: Callee::Bare(n),
                    held,
                    ..
                } if n == "helper" => Some(held),
                _ => None,
            })
            .expect("helper call");
        assert_eq!(call, &vec!["S.m".to_string()]);
        let g = fn_named(&pf, "g");
        let call = g
            .ops
            .iter()
            .find_map(|o| match o {
                Op::Call { held, .. } => Some(held),
                _ => None,
            })
            .expect("helper call");
        assert!(call.is_empty());
    }

    #[test]
    fn temporary_guard_dies_at_statement_end() {
        let pf = parse(
            "struct S { m: M }\nimpl S {\n fn f(&self) {\n    self.m.lock().push(1);\n    helper();\n }\n}\n",
        );
        let f = fn_named(&pf, "f");
        let helper_held = f
            .ops
            .iter()
            .find_map(|o| match o {
                Op::Call {
                    callee: Callee::Bare(n),
                    held,
                    ..
                } if n == "helper" => Some(held),
                _ => None,
            })
            .expect("helper call");
        assert!(helper_held.is_empty(), "{helper_held:?}");
    }

    #[test]
    fn match_scrutinee_guard_extends_over_the_match() {
        let pf = parse(
            "struct S { m: M }\nimpl S {\n fn f(&self) {\n    match self.m.lock().kind {\n        1 => helper(),\n        _ => {}\n    }\n}\n}\n",
        );
        let f = fn_named(&pf, "f");
        let helper_held = f
            .ops
            .iter()
            .find_map(|o| match o {
                Op::Call {
                    callee: Callee::Bare(n),
                    held,
                    ..
                } if n == "helper" => Some(held),
                _ => None,
            })
            .expect("helper call");
        assert_eq!(helper_held, &vec!["S.m".to_string()]);
    }

    #[test]
    fn plain_if_condition_guard_dies_at_block_open() {
        let pf = parse(
            "struct S { m: M }\nimpl S {\n fn f(&self) {\n    if self.m.lock().is_empty() {\n        helper();\n    }\n}\n}\n",
        );
        let f = fn_named(&pf, "f");
        let helper_held = f
            .ops
            .iter()
            .find_map(|o| match o {
                Op::Call {
                    callee: Callee::Bare(n),
                    held,
                    ..
                } if n == "helper" => Some(held),
                _ => None,
            })
            .expect("helper call");
        assert!(helper_held.is_empty(), "{helper_held:?}");
    }

    #[test]
    fn drop_releases_a_named_guard() {
        let pf = parse(
            "struct S { m: M }\nimpl S {\n fn f(&self) {\n    let g = self.m.lock();\n    drop(g);\n    helper();\n }\n}\n",
        );
        let f = fn_named(&pf, "f");
        let helper_held = f
            .ops
            .iter()
            .find_map(|o| match o {
                Op::Call {
                    callee: Callee::Bare(n),
                    held,
                    ..
                } if n == "helper" => Some(held),
                _ => None,
            })
            .expect("helper call");
        assert!(helper_held.is_empty(), "{helper_held:?}");
    }

    #[test]
    fn blocking_ops_and_held_sets() {
        let pf = parse(
            "struct S { m: M }\nimpl S {\n fn f(&self) {\n    let g = self.m.lock();\n    g.writer.write_all(b\"x\");\n }\n}\n",
        );
        let f = fn_named(&pf, "f");
        let blocked = f
            .ops
            .iter()
            .find_map(|o| match o {
                Op::Block { what, held, .. } => Some((what, held)),
                _ => None,
            })
            .expect("blocking op");
        assert_eq!(*blocked.0, "file/socket write");
        assert_eq!(blocked.1, &vec!["S.m".to_string()]);
    }

    #[test]
    fn chaos_shim_path_calls_count_as_blocking() {
        let pf = parse(
            "struct S { m: M }\nimpl S {\n fn f(&self) {\n    let g = self.m.lock();\n    ChaosStream::passthrough(sock);\n    ChaosListener::new(l, c, \"lbl\");\n }\n}\n",
        );
        let f = fn_named(&pf, "f");
        let whats: Vec<&str> = f
            .ops
            .iter()
            .filter_map(|o| match o {
                Op::Block { what, held, .. } if !held.is_empty() => Some(*what),
                _ => None,
            })
            .collect();
        assert!(whats.contains(&"socket i/o (chaos shim)"), "{whats:?}");
        assert!(whats.contains(&"socket accept (chaos shim)"), "{whats:?}");
    }

    #[test]
    fn io_write_with_args_is_not_a_guard() {
        let pf = parse("fn f(w: &mut W) {\n    w.write(buf);\n    w.read(buf);\n}\n");
        let f = fn_named(&pf, "f");
        assert!(
            !f.ops.iter().any(|o| matches!(o, Op::Acquire { .. })),
            "{:?}",
            f.ops
        );
    }

    #[test]
    fn match_wildcard_and_variant_refs_are_recorded() {
        let pf = parse(
            "fn f(e: &E) {\n    match e {\n        E::A { .. } => {}\n        E::B(_) => helper(),\n        _ => {}\n    }\n}\n",
        );
        let f = fn_named(&pf, "f");
        assert_eq!(f.matches.len(), 1);
        let m = &f.matches[0];
        assert!(m.wildcard_line.is_some());
        assert!(m.arm_refs.contains(&("E".into(), "A".into())));
        assert!(m.arm_refs.contains(&("E".into(), "B".into())));
    }

    #[test]
    fn nested_match_wildcard_does_not_leak_to_outer() {
        let pf = parse(
            "fn f(e: &E, o: Option<u32>) {\n    match e {\n        E::A { .. } => match o {\n            Some(_) => {}\n            _ => {}\n        },\n        E::B(_) => {}\n    }\n}\n",
        );
        let f = fn_named(&pf, "f");
        let outer = f
            .matches
            .iter()
            .find(|m| m.arm_refs.iter().any(|(e, _)| e == "E"))
            .expect("outer match");
        assert!(outer.wildcard_line.is_none(), "{outer:?}");
    }

    #[test]
    fn binding_catch_all_counts_as_wildcard() {
        let pf = parse(
            "fn f(e: &E) {\n    match e {\n        E::A { .. } => {}\n        other => helper(other),\n    }\n}\n",
        );
        let f = fn_named(&pf, "f");
        assert!(f.matches[0].wildcard_line.is_some(), "{:?}", f.matches);
    }

    #[test]
    fn call_classification() {
        let pf = parse(
            "struct S;\nimpl S {\n fn f(&self) {\n    self.a();\n    Self::b();\n    T::c();\n    free();\n    other.d();\n    mem::take(x);\n }\n}\n",
        );
        let f = fn_named(&pf, "f");
        let callees: Vec<&Callee> = f
            .ops
            .iter()
            .filter_map(|o| match o {
                Op::Call { callee, .. } => Some(callee),
                _ => None,
            })
            .collect();
        assert!(callees.contains(&&Callee::SelfMethod("a".into())));
        assert!(callees.contains(&&Callee::SelfMethod("b".into())));
        assert!(callees.contains(&&Callee::TypeMethod("T".into(), "c".into())));
        assert!(callees.contains(&&Callee::Bare("free".into())));
        assert!(callees.contains(&&Callee::Unresolved("d".into())));
        assert!(callees.contains(&&Callee::Bare("take".into())));
    }

    #[test]
    fn test_region_functions_are_marked() {
        let pf = parse("fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { helper(); }\n}\n");
        assert!(!fn_named(&pf, "lib").in_test);
        assert!(fn_named(&pf, "t").in_test);
    }
}
