//! The three semantic passes: lock-order, blocking-under-lock, and
//! event-exhaustiveness (DESIGN.md §15).
//!
//! All three run over the whole-workspace model built by
//! [`parser`](crate::parser) + [`graph`](crate::graph) and return *raw*
//! diagnostics — `specsync-allow` suppression happens in the shared
//! driver, exactly as for the per-file lints.
//!
//! Scope rules: functions in test regions are skipped everywhere;
//! `event_only` files (the designated trace summarizer) participate only
//! in event-exhaustiveness.

use std::collections::{BTreeMap, BTreeSet};

use crate::graph::{cycles, FnId, Graph};
use crate::lints::{Diagnostic, Lint};
use crate::parser::{Op, ParsedFile};

/// One enum-dispatch contract the exhaustiveness pass enforces: every
/// variant of `enum_name` must be referenced (transitively) by every
/// `method` impl of `trait_name`, and no wildcard arm in those impls may
/// silently drop variants.
struct DispatchContract {
    /// The dispatched enum.
    enum_name: &'static str,
    /// Crate-path hint disambiguating same-named enums elsewhere in the
    /// workspace (simnet has its own `Event`).
    hint: &'static str,
    /// The trait whose impls must be variant-exhaustive.
    trait_name: &'static str,
    /// The trait method carrying the dispatch.
    method: &'static str,
    /// Whether the designated `event_only` summarizer files also
    /// participate in the wildcard check for this enum.
    include_event_only: bool,
}

/// The enforced contracts: every telemetry `Event` variant handled by
/// every `EventSink::record` impl (and the trace summarizer), and every
/// `WireMessage` protocol frame handled by every `Transport::send` impl —
/// a new frame cannot be silently dropped by one transport and handled by
/// the other.
const DISPATCH_CONTRACTS: &[DispatchContract] = &[
    DispatchContract {
        enum_name: "Event",
        hint: "telemetry",
        trait_name: "EventSink",
        method: "record",
        include_event_only: true,
    },
    DispatchContract {
        enum_name: "WireMessage",
        hint: "net",
        trait_name: "Transport",
        method: "send",
        include_event_only: false,
    },
];
/// Enums that must have no dead (never-referenced) variants, with their
/// crate-path hints.
const NO_DEAD_VARIANTS: &[(&str, &str)] = &[("SpecSyncError", "core"), ("FailoverControl", "net")];

/// Locates an enum by name, preferring a defining file whose label
/// contains `hint` (fixtures have no crate paths, so any match is the
/// fallback).
fn find_enum(files: &[ParsedFile], name: &str, hint: &str) -> Option<(usize, usize)> {
    let mut fallback = None;
    for (fi, pf) in files.iter().enumerate() {
        for (ei, e) in pf.enums.iter().enumerate() {
            if e.name != name {
                continue;
            }
            if pf.label.contains(hint) {
                return Some((fi, ei));
            }
            fallback.get_or_insert((fi, ei));
        }
    }
    fallback
}

/// Runs all semantic passes over the model.
pub fn run(files: &[ParsedFile], graph: &Graph) -> Vec<Diagnostic> {
    let mut out = BTreeSet::new();
    lock_order(files, graph, &mut out);
    blocking_under_lock(files, graph, &mut out);
    event_exhaustiveness(files, graph, &mut out);
    dead_variants(files, graph, &mut out);
    out.into_iter()
        .map(|(file, line, lint, message)| Diagnostic {
            lint,
            file,
            line,
            message,
        })
        .collect()
}

type RawSet = BTreeSet<(String, usize, Lint, String)>;

/// Iterates the non-test functions that the lock passes cover.
fn lock_scope(
    files: &[ParsedFile],
) -> impl Iterator<Item = (FnId, &ParsedFile, &crate::parser::FnDef)> {
    files
        .iter()
        .enumerate()
        .filter(|(_, pf)| !pf.event_only)
        .flat_map(|(fi, pf)| {
            pf.functions
                .iter()
                .enumerate()
                .filter(|(_, f)| !f.in_test)
                .map(move |(fni, f)| ((fi, fni), pf, f))
        })
}

fn fmt_held(held: &[String]) -> String {
    held.join("`, `")
}

/// Pass 1: double-acquisition on one path, and cycles in the lock-order
/// graph (edge `a → b` whenever `b` is acquired — directly or through a
/// resolvable call — while `a` is held).
fn lock_order(files: &[ParsedFile], graph: &Graph, out: &mut RawSet) {
    // Edge → first example site, for anchoring cycle diagnostics.
    let mut edges: BTreeMap<(String, String), (String, usize)> = BTreeMap::new();

    for (id, pf, f) in lock_scope(files) {
        for op in &f.ops {
            match op {
                Op::Acquire { class, line, held } => {
                    if held.contains(class) {
                        out.insert((
                            pf.label.clone(),
                            *line,
                            Lint::LockOrder,
                            format!(
                                "`{}` acquires lock class `{class}` while already \
                                 holding it — self-deadlock on one path",
                                f.qual
                            ),
                        ));
                    }
                    for h in held {
                        if h != class {
                            edges
                                .entry((h.clone(), class.clone()))
                                .or_insert_with(|| (pf.label.clone(), *line));
                        }
                    }
                }
                Op::Call { callee, line, held } if !held.is_empty() => {
                    for target in graph.resolve(files, id, callee) {
                        for acquired in &graph.acquires[&target] {
                            if held.contains(acquired) {
                                out.insert((
                                    pf.label.clone(),
                                    *line,
                                    Lint::LockOrder,
                                    format!(
                                        "`{}` calls `{}` which re-acquires lock class \
                                         `{acquired}` already held here",
                                        f.qual,
                                        graph.qual(files, target)
                                    ),
                                ));
                            } else {
                                for h in held {
                                    edges
                                        .entry((h.clone(), acquired.clone()))
                                        .or_insert_with(|| (pf.label.clone(), *line));
                                }
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }

    let mut adj: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        adj.entry(a.clone()).or_default().insert(b.clone());
        adj.entry(b.clone()).or_default();
    }
    for scc in cycles(&adj) {
        // Anchor the cycle at the example site of its least intra-SCC edge.
        let anchor = edges
            .iter()
            .find(|((a, b), _)| scc.contains(a) && scc.contains(b))
            .map(|(_, site)| site.clone());
        let (file, line) = anchor.unwrap_or_else(|| ("<workspace>".into(), 0));
        out.insert((
            file,
            line,
            Lint::LockOrder,
            format!(
                "lock-order cycle between classes `{}` — two threads taking \
                 them in opposite orders can deadlock",
                scc.join("`, `")
            ),
        ));
    }
}

/// Pass 2: blocking primitives reached (directly or transitively) while a
/// lock guard is live.
fn blocking_under_lock(files: &[ParsedFile], graph: &Graph, out: &mut RawSet) {
    for (id, pf, f) in lock_scope(files) {
        for op in &f.ops {
            match op {
                Op::Block { what, line, held } if !held.is_empty() => {
                    out.insert((
                        pf.label.clone(),
                        *line,
                        Lint::BlockingUnderLock,
                        format!(
                            "{what} while holding lock class(es) `{}` — blocks \
                             every thread contending on them",
                            fmt_held(held)
                        ),
                    ));
                }
                Op::Call { callee, line, held } if !held.is_empty() => {
                    for target in graph.resolve(files, id, callee) {
                        if let Some((what, site)) = graph.blocks[&target].iter().next() {
                            out.insert((
                                pf.label.clone(),
                                *line,
                                Lint::BlockingUnderLock,
                                format!(
                                    "call into `{}` may reach {what} (in `{site}`) \
                                     while holding lock class(es) `{}`",
                                    graph.qual(files, target),
                                    fmt_held(held)
                                ),
                            ));
                        }
                    }
                }
                _ => {}
            }
        }
    }
}

/// Pass 3a/3b, once per [`DispatchContract`]: every variant of the
/// contract's enum handled in every `trait::method` impl (transitively,
/// so encoding helpers count), and no wildcard arm that silently drops
/// variants in those impls (plus the trace summarizer, for `Event`).
fn event_exhaustiveness(files: &[ParsedFile], graph: &Graph, out: &mut RawSet) {
    for contract in DISPATCH_CONTRACTS {
        let Some((efi, eei)) = find_enum(files, contract.enum_name, contract.hint) else {
            continue;
        };
        let all: BTreeSet<&str> = files[efi].enums[eei]
            .variants
            .iter()
            .map(|(v, _)| v.as_str())
            .collect();
        let total = all.len();

        for (fi, pf) in files.iter().enumerate() {
            for (fni, f) in pf.functions.iter().enumerate() {
                if f.in_test {
                    continue;
                }
                let in_impl = f.trait_name.as_deref() == Some(contract.trait_name);

                // (a) the dispatch method must reference every variant
                // somewhere in its call tree — or carry an allow saying
                // why it is variant-agnostic (e.g. it clones the whole
                // event).
                if in_impl && f.name == contract.method {
                    let id: FnId = (fi, fni);
                    let seen: BTreeSet<&str> = graph.variant_refs[&id]
                        .iter()
                        .filter(|(e, _)| e == contract.enum_name)
                        .map(|(_, v)| v.as_str())
                        .collect();
                    let missing: Vec<&str> = all.difference(&seen).copied().collect();
                    if !missing.is_empty() {
                        out.insert((
                            pf.label.clone(),
                            f.line,
                            Lint::EventExhaustiveness,
                            format!(
                                "`{}` handles {}/{} `{}` variants; unhandled: `{}`",
                                f.qual,
                                total - missing.len(),
                                total,
                                contract.enum_name,
                                missing.join("`, `")
                            ),
                        ));
                    }
                }

                // (b) wildcard arms in the enum's dispatches must not hide
                // unlisted variants.
                if !(in_impl || (contract.include_event_only && pf.event_only)) {
                    continue;
                }
                for m in &f.matches {
                    let Some(wline) = m.wildcard_line else {
                        continue;
                    };
                    let dispatched = m
                        .arm_refs
                        .iter()
                        .filter(|(e, _)| e == contract.enum_name)
                        .count();
                    if dispatched < 2 {
                        continue;
                    }
                    let covered: BTreeSet<&str> = m
                        .refs
                        .iter()
                        .filter(|(e, _)| e == contract.enum_name)
                        .map(|(_, v)| v.as_str())
                        .collect();
                    let missing: Vec<&str> = all.difference(&covered).copied().collect();
                    if !missing.is_empty() {
                        out.insert((
                            pf.label.clone(),
                            wline,
                            Lint::EventExhaustiveness,
                            format!(
                                "wildcard arm in `{}` silently drops `{}` \
                                 variant(s) `{}`",
                                f.qual,
                                contract.enum_name,
                                missing.join("`, `")
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// Pass 3c: no dead variants — every variant of the enums in
/// [`NO_DEAD_VARIANTS`] must be referenced from non-test code outside the
/// defining file's `fmt`/`source` impls (a variant only ever *displayed*
/// is still dead).
fn dead_variants(files: &[ParsedFile], _graph: &Graph, out: &mut RawSet) {
    for &(ename, hint) in NO_DEAD_VARIANTS {
        let Some((efi, eei)) = find_enum(files, ename, hint) else {
            continue;
        };
        let edef = &files[efi].enums[eei];
        let mut referenced: BTreeSet<&str> = BTreeSet::new();
        for (fi, pf) in files.iter().enumerate() {
            for f in &pf.functions {
                if f.in_test {
                    continue;
                }
                if fi == efi && matches!(f.name.as_str(), "fmt" | "source") {
                    continue;
                }
                referenced.extend(
                    f.path_refs
                        .iter()
                        .filter(|(e, _, _)| e == ename)
                        .map(|(_, v, _)| v.as_str()),
                );
            }
        }
        for (variant, line) in &edef.variants {
            if !referenced.contains(variant.as_str()) {
                out.insert((
                    files[efi].label.clone(),
                    *line,
                    Lint::EventExhaustiveness,
                    format!(
                        "`{ename}::{variant}` is never referenced outside tests \
                         and `fmt`/`source` — dead variant"
                    ),
                ));
            }
        }
    }
}
