//! The three semantic passes: lock-order, blocking-under-lock, and
//! event-exhaustiveness (DESIGN.md §15).
//!
//! All three run over the whole-workspace model built by
//! [`parser`](crate::parser) + [`graph`](crate::graph) and return *raw*
//! diagnostics — `specsync-allow` suppression happens in the shared
//! driver, exactly as for the per-file lints.
//!
//! Scope rules: functions in test regions are skipped everywhere;
//! `event_only` files (the designated trace summarizer) participate only
//! in event-exhaustiveness.

use std::collections::{BTreeMap, BTreeSet};

use crate::graph::{cycles, FnId, Graph};
use crate::lints::{Diagnostic, Lint};
use crate::parser::{Op, ParsedFile};

/// The enum whose variants every sink and summarizer must handle, with
/// the crate-path hint that disambiguates it from same-named enums
/// elsewhere in the workspace (simnet has its own `Event`).
const EVENT_ENUM: &str = "Event";
const EVENT_ENUM_HINT: &str = "telemetry";
/// The sink trait whose `record` impls must be variant-exhaustive.
const SINK_TRAIT: &str = "EventSink";
/// Enums that must have no dead (never-referenced) variants, with their
/// crate-path hints.
const NO_DEAD_VARIANTS: &[(&str, &str)] = &[("SpecSyncError", "core")];

/// Locates an enum by name, preferring a defining file whose label
/// contains `hint` (fixtures have no crate paths, so any match is the
/// fallback).
fn find_enum(files: &[ParsedFile], name: &str, hint: &str) -> Option<(usize, usize)> {
    let mut fallback = None;
    for (fi, pf) in files.iter().enumerate() {
        for (ei, e) in pf.enums.iter().enumerate() {
            if e.name != name {
                continue;
            }
            if pf.label.contains(hint) {
                return Some((fi, ei));
            }
            fallback.get_or_insert((fi, ei));
        }
    }
    fallback
}

/// Runs all semantic passes over the model.
pub fn run(files: &[ParsedFile], graph: &Graph) -> Vec<Diagnostic> {
    let mut out = BTreeSet::new();
    lock_order(files, graph, &mut out);
    blocking_under_lock(files, graph, &mut out);
    event_exhaustiveness(files, graph, &mut out);
    dead_variants(files, graph, &mut out);
    out.into_iter()
        .map(|(file, line, lint, message)| Diagnostic {
            lint,
            file,
            line,
            message,
        })
        .collect()
}

type RawSet = BTreeSet<(String, usize, Lint, String)>;

/// Iterates the non-test functions that the lock passes cover.
fn lock_scope(
    files: &[ParsedFile],
) -> impl Iterator<Item = (FnId, &ParsedFile, &crate::parser::FnDef)> {
    files
        .iter()
        .enumerate()
        .filter(|(_, pf)| !pf.event_only)
        .flat_map(|(fi, pf)| {
            pf.functions
                .iter()
                .enumerate()
                .filter(|(_, f)| !f.in_test)
                .map(move |(fni, f)| ((fi, fni), pf, f))
        })
}

fn fmt_held(held: &[String]) -> String {
    held.join("`, `")
}

/// Pass 1: double-acquisition on one path, and cycles in the lock-order
/// graph (edge `a → b` whenever `b` is acquired — directly or through a
/// resolvable call — while `a` is held).
fn lock_order(files: &[ParsedFile], graph: &Graph, out: &mut RawSet) {
    // Edge → first example site, for anchoring cycle diagnostics.
    let mut edges: BTreeMap<(String, String), (String, usize)> = BTreeMap::new();

    for (id, pf, f) in lock_scope(files) {
        for op in &f.ops {
            match op {
                Op::Acquire { class, line, held } => {
                    if held.contains(class) {
                        out.insert((
                            pf.label.clone(),
                            *line,
                            Lint::LockOrder,
                            format!(
                                "`{}` acquires lock class `{class}` while already \
                                 holding it — self-deadlock on one path",
                                f.qual
                            ),
                        ));
                    }
                    for h in held {
                        if h != class {
                            edges
                                .entry((h.clone(), class.clone()))
                                .or_insert_with(|| (pf.label.clone(), *line));
                        }
                    }
                }
                Op::Call { callee, line, held } if !held.is_empty() => {
                    for target in graph.resolve(files, id, callee) {
                        for acquired in &graph.acquires[&target] {
                            if held.contains(acquired) {
                                out.insert((
                                    pf.label.clone(),
                                    *line,
                                    Lint::LockOrder,
                                    format!(
                                        "`{}` calls `{}` which re-acquires lock class \
                                         `{acquired}` already held here",
                                        f.qual,
                                        graph.qual(files, target)
                                    ),
                                ));
                            } else {
                                for h in held {
                                    edges
                                        .entry((h.clone(), acquired.clone()))
                                        .or_insert_with(|| (pf.label.clone(), *line));
                                }
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }

    let mut adj: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        adj.entry(a.clone()).or_default().insert(b.clone());
        adj.entry(b.clone()).or_default();
    }
    for scc in cycles(&adj) {
        // Anchor the cycle at the example site of its least intra-SCC edge.
        let anchor = edges
            .iter()
            .find(|((a, b), _)| scc.contains(a) && scc.contains(b))
            .map(|(_, site)| site.clone());
        let (file, line) = anchor.unwrap_or_else(|| ("<workspace>".into(), 0));
        out.insert((
            file,
            line,
            Lint::LockOrder,
            format!(
                "lock-order cycle between classes `{}` — two threads taking \
                 them in opposite orders can deadlock",
                scc.join("`, `")
            ),
        ));
    }
}

/// Pass 2: blocking primitives reached (directly or transitively) while a
/// lock guard is live.
fn blocking_under_lock(files: &[ParsedFile], graph: &Graph, out: &mut RawSet) {
    for (id, pf, f) in lock_scope(files) {
        for op in &f.ops {
            match op {
                Op::Block { what, line, held } if !held.is_empty() => {
                    out.insert((
                        pf.label.clone(),
                        *line,
                        Lint::BlockingUnderLock,
                        format!(
                            "{what} while holding lock class(es) `{}` — blocks \
                             every thread contending on them",
                            fmt_held(held)
                        ),
                    ));
                }
                Op::Call { callee, line, held } if !held.is_empty() => {
                    for target in graph.resolve(files, id, callee) {
                        if let Some((what, site)) = graph.blocks[&target].iter().next() {
                            out.insert((
                                pf.label.clone(),
                                *line,
                                Lint::BlockingUnderLock,
                                format!(
                                    "call into `{}` may reach {what} (in `{site}`) \
                                     while holding lock class(es) `{}`",
                                    graph.qual(files, target),
                                    fmt_held(held)
                                ),
                            ));
                        }
                    }
                }
                _ => {}
            }
        }
    }
}

/// Pass 3a/3b: every `Event` variant handled in every `EventSink::record`
/// impl (transitively, so encoding helpers count), and no wildcard arm
/// that silently drops variants in sinks or the trace summarizer.
fn event_exhaustiveness(files: &[ParsedFile], graph: &Graph, out: &mut RawSet) {
    let Some((efi, eei)) = find_enum(files, EVENT_ENUM, EVENT_ENUM_HINT) else {
        return;
    };
    let all: BTreeSet<&str> = files[efi].enums[eei]
        .variants
        .iter()
        .map(|(v, _)| v.as_str())
        .collect();
    let total = all.len();

    for (fi, pf) in files.iter().enumerate() {
        for (fni, f) in pf.functions.iter().enumerate() {
            if f.in_test {
                continue;
            }
            let in_sink = f.trait_name.as_deref() == Some(SINK_TRAIT);

            // (a) `record` impls must reference every variant somewhere in
            // their call tree — or carry an allow saying why they are
            // variant-agnostic (e.g. they clone the whole event).
            if in_sink && f.name == "record" {
                let id: FnId = (fi, fni);
                let seen: BTreeSet<&str> = graph.variant_refs[&id]
                    .iter()
                    .filter(|(e, _)| e == EVENT_ENUM)
                    .map(|(_, v)| v.as_str())
                    .collect();
                let missing: Vec<&str> = all.difference(&seen).copied().collect();
                if !missing.is_empty() {
                    out.insert((
                        pf.label.clone(),
                        f.line,
                        Lint::EventExhaustiveness,
                        format!(
                            "`{}` handles {}/{} `Event` variants; unhandled: `{}`",
                            f.qual,
                            total - missing.len(),
                            total,
                            missing.join("`, `")
                        ),
                    ));
                }
            }

            // (b) wildcard arms in Event dispatches (sinks + summarizer)
            // must not hide unlisted variants.
            if !(in_sink || pf.event_only) {
                continue;
            }
            for m in &f.matches {
                let Some(wline) = m.wildcard_line else {
                    continue;
                };
                let dispatched = m.arm_refs.iter().filter(|(e, _)| e == EVENT_ENUM).count();
                if dispatched < 2 {
                    continue;
                }
                let covered: BTreeSet<&str> = m
                    .refs
                    .iter()
                    .filter(|(e, _)| e == EVENT_ENUM)
                    .map(|(_, v)| v.as_str())
                    .collect();
                let missing: Vec<&str> = all.difference(&covered).copied().collect();
                if !missing.is_empty() {
                    out.insert((
                        pf.label.clone(),
                        wline,
                        Lint::EventExhaustiveness,
                        format!(
                            "wildcard arm in `{}` silently drops `Event` \
                             variant(s) `{}`",
                            f.qual,
                            missing.join("`, `")
                        ),
                    ));
                }
            }
        }
    }
}

/// Pass 3c: no dead variants — every variant of the enums in
/// [`NO_DEAD_VARIANTS`] must be referenced from non-test code outside the
/// defining file's `fmt`/`source` impls (a variant only ever *displayed*
/// is still dead).
fn dead_variants(files: &[ParsedFile], _graph: &Graph, out: &mut RawSet) {
    for &(ename, hint) in NO_DEAD_VARIANTS {
        let Some((efi, eei)) = find_enum(files, ename, hint) else {
            continue;
        };
        let edef = &files[efi].enums[eei];
        let mut referenced: BTreeSet<&str> = BTreeSet::new();
        for (fi, pf) in files.iter().enumerate() {
            for f in &pf.functions {
                if f.in_test {
                    continue;
                }
                if fi == efi && matches!(f.name.as_str(), "fmt" | "source") {
                    continue;
                }
                referenced.extend(
                    f.path_refs
                        .iter()
                        .filter(|(e, _, _)| e == ename)
                        .map(|(_, v, _)| v.as_str()),
                );
            }
        }
        for (variant, line) in &edef.variants {
            if !referenced.contains(variant.as_str()) {
                out.insert((
                    files[efi].label.clone(),
                    *line,
                    Lint::EventExhaustiveness,
                    format!(
                        "`{ename}::{variant}` is never referenced outside tests \
                         and `fmt`/`source` — dead variant"
                    ),
                ));
            }
        }
    }
}
