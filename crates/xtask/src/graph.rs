//! Symbol table, intra-workspace call resolution, and transitive
//! summaries over [`parser::ParsedFile`]s.
//!
//! Resolution trades recall for precision (DESIGN.md §15): `self.m()` and
//! `Self::m()` resolve within the enclosing impl type, `Type::m()`
//! resolves to that type's impls (by type *name* — the workspace has no
//! real type system), and bare `f()` / `path::f()` resolve to free
//! functions named `f`. Method calls on any other receiver stay
//! unresolved. When several candidates match, same-file candidates win;
//! otherwise all candidates are kept (an over-approximation).
//!
//! Three summaries are propagated to a fixpoint along resolved call
//! edges, each answering one pass's question about a function and
//! everything it can reach:
//!
//! * **acquires** — every lock class it may take;
//! * **blocks** — every blocking primitive it may hit, tagged with the
//!   function that contains it (for diagnostics);
//! * **variant_refs** — every `Enum::Variant` of a workspace enum it
//!   references (how `JsonlSink::record` gets credit for the exhaustive
//!   match inside `encode_line`).
//!
//! Functions in test regions are invisible: they are neither resolution
//! targets nor summary sources.

use std::collections::{BTreeMap, BTreeSet};

use crate::parser::{Callee, Op, ParsedFile};

/// `(file index, function index)` into the parsed model.
pub type FnId = (usize, usize);

/// The workspace model: symbol tables plus fixpoint summaries.
#[derive(Debug)]
pub struct Graph {
    /// Free functions (no enclosing impl) by name.
    free_fns: BTreeMap<String, Vec<FnId>>,
    /// Methods by `(self type name, method name)`.
    methods: BTreeMap<(String, String), Vec<FnId>>,
    /// Workspace enums by name → `(file index, enum index)`. On a name
    /// collision across crates the first (label-sorted) file wins.
    pub enums: BTreeMap<String, (usize, usize)>,
    /// Transitive lock-class acquisitions per function.
    pub acquires: BTreeMap<FnId, BTreeSet<String>>,
    /// Transitive blocking primitives per function, as
    /// `(what, qualified name of the function containing the site)`.
    pub blocks: BTreeMap<FnId, BTreeSet<(String, String)>>,
    /// Transitive `(enum, variant)` references per function, filtered to
    /// enums defined in the workspace.
    pub variant_refs: BTreeMap<FnId, BTreeSet<(String, String)>>,
}

impl Graph {
    /// Builds symbol tables and runs the summary fixpoint.
    pub fn build(files: &[ParsedFile]) -> Graph {
        let mut g = Graph {
            free_fns: BTreeMap::new(),
            methods: BTreeMap::new(),
            enums: BTreeMap::new(),
            acquires: BTreeMap::new(),
            blocks: BTreeMap::new(),
            variant_refs: BTreeMap::new(),
        };

        let mut enum_variants: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for (fi, file) in files.iter().enumerate() {
            for (ei, e) in file.enums.iter().enumerate() {
                g.enums.entry(e.name.clone()).or_insert((fi, ei));
                enum_variants
                    .entry(e.name.clone())
                    .or_default()
                    .extend(e.variants.iter().map(|(v, _)| v.clone()));
            }
            for (fni, f) in file.functions.iter().enumerate() {
                if f.in_test {
                    continue;
                }
                let id = (fi, fni);
                match &f.self_type {
                    Some(ty) => g
                        .methods
                        .entry((ty.clone(), f.name.clone()))
                        .or_default()
                        .push(id),
                    None => g.free_fns.entry(f.name.clone()).or_default().push(id),
                }
            }
        }

        // Direct summaries and resolved call targets.
        let mut targets: BTreeMap<FnId, BTreeSet<FnId>> = BTreeMap::new();
        let ids: Vec<FnId> = files
            .iter()
            .enumerate()
            .flat_map(|(fi, file)| {
                file.functions
                    .iter()
                    .enumerate()
                    .filter(|(_, f)| !f.in_test)
                    .map(move |(fni, _)| (fi, fni))
            })
            .collect();
        for &id in &ids {
            let f = &files[id.0].functions[id.1];
            let mut acq = BTreeSet::new();
            let mut blk = BTreeSet::new();
            let mut tgt = BTreeSet::new();
            for op in &f.ops {
                match op {
                    Op::Acquire { class, .. } => {
                        acq.insert(class.clone());
                    }
                    Op::Block { what, .. } => {
                        blk.insert((what.to_string(), f.qual.clone()));
                    }
                    Op::Call { callee, .. } => {
                        tgt.extend(g.resolve(files, id, callee));
                    }
                }
            }
            let refs: BTreeSet<(String, String)> = f
                .path_refs
                .iter()
                .filter(|(e, v, _)| enum_variants.get(e).is_some_and(|vs| vs.contains(v)))
                .map(|(e, v, _)| (e.clone(), v.clone()))
                .collect();
            g.acquires.insert(id, acq);
            g.blocks.insert(id, blk);
            g.variant_refs.insert(id, refs);
            targets.insert(id, tgt);
        }

        // Fixpoint: union callee summaries into callers until stable.
        // Terminates because sets only grow and the universe is finite.
        let mut changed = true;
        while changed {
            changed = false;
            for &id in &ids {
                let mut add_acq = BTreeSet::new();
                let mut add_blk = BTreeSet::new();
                let mut add_refs = BTreeSet::new();
                for t in &targets[&id] {
                    if let Some(s) = g.acquires.get(t) {
                        add_acq.extend(s.iter().cloned());
                    }
                    if let Some(s) = g.blocks.get(t) {
                        add_blk.extend(s.iter().cloned());
                    }
                    if let Some(s) = g.variant_refs.get(t) {
                        add_refs.extend(s.iter().cloned());
                    }
                }
                let acq = g.acquires.get_mut(&id).expect("seeded above");
                for x in add_acq {
                    changed |= acq.insert(x);
                }
                let blk = g.blocks.get_mut(&id).expect("seeded above");
                for x in add_blk {
                    changed |= blk.insert(x);
                }
                let refs = g.variant_refs.get_mut(&id).expect("seeded above");
                for x in add_refs {
                    changed |= refs.insert(x);
                }
            }
        }
        g
    }

    /// Resolves one call site to candidate workspace functions.
    pub fn resolve(&self, files: &[ParsedFile], caller: FnId, callee: &Callee) -> Vec<FnId> {
        let candidates: &[FnId] = match callee {
            Callee::Bare(name) => self.free_fns.get(name).map_or(&[][..], Vec::as_slice),
            Callee::SelfMethod(name) => {
                let Some(ty) = &files[caller.0].functions[caller.1].self_type else {
                    return Vec::new();
                };
                self.methods
                    .get(&(ty.clone(), name.clone()))
                    .map_or(&[][..], Vec::as_slice)
            }
            Callee::TypeMethod(ty, name) => self
                .methods
                .get(&(ty.clone(), name.clone()))
                .map_or(&[][..], Vec::as_slice),
            Callee::Unresolved(_) => &[],
        };
        let same_file: Vec<FnId> = candidates
            .iter()
            .copied()
            .filter(|id| id.0 == caller.0)
            .collect();
        if !same_file.is_empty() {
            same_file
        } else {
            candidates.to_vec()
        }
    }

    /// The qualified display name of a function.
    pub fn qual<'a>(&self, files: &'a [ParsedFile], id: FnId) -> &'a str {
        &files[id.0].functions[id.1].qual
    }
}

/// Strongly connected components with ≥ 2 nodes in a class graph, each
/// sorted, the list sorted by first element — a deterministic rendering
/// of every lock-order cycle.
pub fn cycles(adj: &BTreeMap<String, BTreeSet<String>>) -> Vec<Vec<String>> {
    // Iterative Tarjan. Node order (and thus SCC discovery order) follows
    // the BTreeMap, so output is stable.
    let nodes: Vec<&String> = adj.keys().collect();
    let index_of: BTreeMap<&str, usize> = nodes
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i))
        .collect();
    let n = nodes.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut out: Vec<Vec<String>> = Vec::new();

    enum Frame {
        Enter(usize),
        Resume(usize, usize),
    }

    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut work = vec![Frame::Enter(start)];
        while let Some(frame) = work.pop() {
            match frame {
                Frame::Enter(v) => {
                    index[v] = next_index;
                    low[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                    work.push(Frame::Resume(v, 0));
                }
                Frame::Resume(v, child) => {
                    let succs: Vec<usize> = adj[nodes[v]]
                        .iter()
                        .filter_map(|s| index_of.get(s.as_str()).copied())
                        .collect();
                    let mut advanced = false;
                    for (k, &w) in succs.iter().enumerate().skip(child) {
                        if index[w] == usize::MAX {
                            work.push(Frame::Resume(v, k + 1));
                            work.push(Frame::Enter(w));
                            advanced = true;
                            break;
                        }
                        if on_stack[w] {
                            low[v] = low[v].min(index[w]);
                        }
                    }
                    if advanced {
                        continue;
                    }
                    // All successors done: pop an SCC if v is a root.
                    if low[v] == index[v] {
                        let mut comp = Vec::new();
                        while let Some(w) = stack.pop() {
                            on_stack[w] = false;
                            comp.push(nodes[w].clone());
                            if w == v {
                                break;
                            }
                        }
                        if comp.len() >= 2 {
                            comp.sort();
                            out.push(comp);
                        }
                    }
                    // Propagate lowlink to the parent Resume frame.
                    if let Some(Frame::Resume(p, _)) = work.last() {
                        let p = *p;
                        low[p] = low[p].min(low[v]);
                    }
                }
            }
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;
    use crate::parser::parse_file;
    use crate::workspace::CrateClass;

    fn model(sources: &[(&str, &str)]) -> Vec<ParsedFile> {
        sources
            .iter()
            .map(|(label, src)| {
                let scanned = lexer::scan(src);
                let regions = lexer::test_regions(&scanned.sanitized);
                parse_file(
                    label,
                    &scanned.sanitized,
                    CrateClass::Deterministic,
                    false,
                    &regions,
                )
            })
            .collect()
    }

    fn id_of(files: &[ParsedFile], qual: &str) -> FnId {
        for (fi, f) in files.iter().enumerate() {
            for (fni, func) in f.functions.iter().enumerate() {
                if func.qual == qual {
                    return (fi, fni);
                }
            }
        }
        panic!("no fn {qual}");
    }

    #[test]
    fn transitive_acquires_cross_files() {
        let files = model(&[
            (
                "a.rs",
                "struct A { m: M }\nimpl A {\n fn outer(&self) { helper(); }\n}\n",
            ),
            (
                "b.rs",
                "struct B { n: M }\nfn helper() { B_INSTANCE.with(|b| ()); inner(); }\nfn inner() { other_lock.lock(); }\n",
            ),
        ]);
        let g = Graph::build(&files);
        let outer = id_of(&files, "A::outer");
        assert!(
            g.acquires[&outer].iter().any(|c| c.contains("other_lock")),
            "{:?}",
            g.acquires[&outer]
        );
    }

    #[test]
    fn transitive_blocks_carry_the_owning_fn() {
        let files = model(&[(
            "a.rs",
            "fn outer() { middle(); }\nfn middle() { leaf(); }\nfn leaf() { handle.join(); }\n",
        )]);
        let g = Graph::build(&files);
        let outer = id_of(&files, "outer");
        assert!(
            g.blocks[&outer].contains(&("JoinHandle::join".to_string(), "leaf".to_string())),
            "{:?}",
            g.blocks[&outer]
        );
    }

    #[test]
    fn variant_refs_filter_to_workspace_enums() {
        let files = model(&[(
            "a.rs",
            "enum Event { A, B }\nfn f() { let _ = Event::A; let _ = Other::X; }\n",
        )]);
        let g = Graph::build(&files);
        let f = id_of(&files, "f");
        assert_eq!(
            g.variant_refs[&f],
            [("Event".to_string(), "A".to_string())]
                .into_iter()
                .collect()
        );
    }

    #[test]
    fn test_fns_are_not_resolution_targets() {
        let files = model(&[(
            "a.rs",
            "fn outer() { helper(); }\n#[cfg(test)]\nmod tests {\n    fn helper() { x.lock(); }\n}\n",
        )]);
        let g = Graph::build(&files);
        let outer = id_of(&files, "outer");
        assert!(g.acquires[&outer].is_empty(), "{:?}", g.acquires[&outer]);
    }

    #[test]
    fn cycles_finds_two_node_loop() {
        let mut adj: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        adj.entry("a".into()).or_default().insert("b".into());
        adj.entry("b".into()).or_default().insert("a".into());
        adj.entry("c".into()).or_default().insert("a".into());
        let sccs = cycles(&adj);
        assert_eq!(sccs, vec![vec!["a".to_string(), "b".to_string()]]);
    }

    #[test]
    fn cycles_is_empty_for_a_dag() {
        let mut adj: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        adj.entry("a".into()).or_default().insert("b".into());
        adj.entry("b".into()).or_default().insert("c".into());
        adj.entry("c".into()).or_default();
        assert!(cycles(&adj).is_empty());
    }
}
