//! A minimal Rust source scanner.
//!
//! The analyzer does not need full parsing — every lint is a token-level
//! property ("`Instant` is named in non-test code", "`.unwrap()` is called
//! in a library crate"). What it *does* need to be trustworthy:
//!
//! 1. never match inside string literals, char literals, or comments;
//! 2. know which lines belong to `#[cfg(test)]` / `#[test]` items;
//! 3. see comments separately, to honor `specsync-allow` annotations.
//!
//! `scan` produces a *sanitized* copy of the source — comment bodies and
//! literal contents blanked to spaces, newlines preserved so line numbers
//! stay aligned — plus the comment list, and `test_regions` recovers the
//! test-code line ranges by brace matching over the sanitized text.

/// The result of scanning one source file.
#[derive(Debug)]
pub struct SourceScan {
    /// Source with comment bodies and string/char literal contents replaced
    /// by spaces. Byte offsets and line numbers match the original exactly.
    pub sanitized: String,
    /// Every comment, as `(1-based line of the comment's start, text)`.
    /// Block comments spanning lines are recorded at their first line.
    pub comments: Vec<(usize, String)>,
}

/// Scans `source`, blanking comments and literals.
pub fn scan(source: &str) -> SourceScan {
    let bytes = source.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut comments = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;

    // Pushes `b` to the sanitized output, preserving newlines so offsets
    // and line numbers survive blanking.
    fn blank(out: &mut Vec<u8>, b: u8) {
        out.push(if b == b'\n' { b'\n' } else { b' ' });
    }

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                let start_line = line;
                let mut text = String::new();
                while i < bytes.len() && bytes[i] != b'\n' {
                    text.push(bytes[i] as char);
                    blank(&mut out, bytes[i]);
                    i += 1;
                }
                comments.push((start_line, text));
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                let start_line = line;
                let mut text = String::new();
                let mut depth = 0usize;
                while i < bytes.len() {
                    let c = bytes[i];
                    if c == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                        depth += 1;
                        text.push_str("/*");
                        blank(&mut out, c);
                        blank(&mut out, bytes[i + 1]);
                        i += 2;
                        continue;
                    }
                    if c == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                        depth -= 1;
                        text.push_str("*/");
                        blank(&mut out, c);
                        blank(&mut out, bytes[i + 1]);
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                        continue;
                    }
                    if c == b'\n' {
                        line += 1;
                    }
                    text.push(c as char);
                    blank(&mut out, c);
                    i += 1;
                }
                comments.push((start_line, text));
            }
            b'"' => {
                // Regular (or byte) string literal; the opening quote was
                // not preceded by `r`/`r#` (handled below).
                out.push(b'"');
                i += 1;
                while i < bytes.len() {
                    let c = bytes[i];
                    if c == b'\\' && i + 1 < bytes.len() {
                        blank(&mut out, c);
                        if bytes[i + 1] == b'\n' {
                            line += 1;
                        }
                        blank(&mut out, bytes[i + 1]);
                        i += 2;
                        continue;
                    }
                    if c == b'"' {
                        out.push(b'"');
                        i += 1;
                        break;
                    }
                    if c == b'\n' {
                        line += 1;
                    }
                    blank(&mut out, c);
                    i += 1;
                }
            }
            b'r' | b'b' if raw_string_prefix_len(bytes, i).is_some() => {
                // Raw string r"..." / r#"..."# (any number of #), or the
                // byte-string variants br"..." / br#"..."#. The prefix is
                // kept verbatim so offsets stay aligned.
                let prefix = raw_string_prefix_len(bytes, i).unwrap_or(1);
                for _ in 0..prefix {
                    out.push(bytes[i]);
                    i += 1;
                }
                let mut hashes = 0usize;
                while i < bytes.len() && bytes[i] == b'#' {
                    hashes += 1;
                    out.push(b'#');
                    i += 1;
                }
                out.push(b'"');
                i += 1; // the opening quote
                let closer: Vec<u8> = std::iter::once(b'"')
                    .chain(std::iter::repeat_n(b'#', hashes))
                    .collect();
                while i < bytes.len() {
                    if bytes[i..].starts_with(&closer) {
                        for &c in &closer {
                            out.push(c);
                        }
                        i += closer.len();
                        break;
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    blank(&mut out, bytes[i]);
                    i += 1;
                }
            }
            b'\'' => {
                // Distinguish a char literal from a lifetime: a char literal
                // is 'x' or an escape '\..'; a lifetime has no closing quote
                // right after one scalar.
                if i + 1 < bytes.len() && bytes[i + 1] == b'\\' {
                    out.push(b'\'');
                    i += 2; // consume ' and backslash
                    blank(&mut out, b'\\');
                    while i < bytes.len() && bytes[i] != b'\'' {
                        if bytes[i] == b'\n' {
                            line += 1;
                        }
                        blank(&mut out, bytes[i]);
                        i += 1;
                    }
                    if i < bytes.len() {
                        out.push(b'\'');
                        i += 1;
                    }
                } else if char_literal_len(bytes, i).is_some() {
                    let len = char_literal_len(bytes, i).unwrap_or(1);
                    out.push(b'\'');
                    for k in 1..len - 1 {
                        blank(&mut out, bytes[i + k]);
                    }
                    out.push(b'\'');
                    i += len;
                } else {
                    // A lifetime (or label): keep as-is.
                    out.push(b'\'');
                    i += 1;
                }
            }
            _ => {
                if b == b'\n' {
                    line += 1;
                }
                out.push(b);
                i += 1;
            }
        }
    }

    SourceScan {
        // The sanitized buffer substitutes ASCII spaces for arbitrary
        // bytes, which keeps it valid UTF-8 only because multi-byte
        // sequences are blanked wholesale; from_utf8_lossy is belt and
        // braces for any literal we mis-measure.
        sanitized: String::from_utf8_lossy(&out).into_owned(),
        comments,
    }
}

/// If a raw-string prefix starts at `i`, returns its length in bytes: 1
/// for `r"`/`r#"`, 2 for `br"`/`br#"`. Guards against identifiers ending
/// in `r`/`br` by requiring the previous byte to be a non-identifier
/// character, and against raw identifiers (`r#match`) by requiring a `"`
/// right after the hashes.
fn raw_string_prefix_len(bytes: &[u8], i: usize) -> Option<usize> {
    if i > 0 {
        let p = bytes[i - 1];
        if p.is_ascii_alphanumeric() || p == b'_' {
            return None;
        }
    }
    let prefix = match bytes[i] {
        b'r' => 1,
        b'b' if bytes.get(i + 1) == Some(&b'r') => 2,
        _ => return None,
    };
    let mut j = i + prefix;
    while j < bytes.len() && bytes[j] == b'#' {
        j += 1;
    }
    (j < bytes.len() && bytes[j] == b'"').then_some(prefix)
}

/// If a non-escape char literal starts at `i` (which holds `'`), returns
/// its total byte length including quotes; `None` for lifetimes.
fn char_literal_len(bytes: &[u8], i: usize) -> Option<usize> {
    // 'X' where X is a single UTF-8 scalar followed by a closing quote.
    let rest = &bytes[i + 1..];
    if rest.is_empty() || rest[0] == b'\'' {
        return None;
    }
    let scalar_len = utf8_len(rest[0]);
    if rest.len() > scalar_len && rest[scalar_len] == b'\'' {
        Some(1 + scalar_len + 1)
    } else {
        None
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    }
}

/// One identifier token with its location in the sanitized source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ident<'a> {
    pub text: &'a str,
    /// 1-based line number.
    pub line: usize,
    /// Byte offset of the identifier's first byte.
    pub offset: usize,
}

/// All identifier tokens (including keywords) in sanitized source.
pub fn idents(sanitized: &str) -> Vec<Ident<'_>> {
    let bytes = sanitized.as_bytes();
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if b.is_ascii_alphabetic() || b == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            out.push(Ident {
                text: &sanitized[start..i],
                line,
                offset: start,
            });
            continue;
        }
        if b.is_ascii_digit() {
            // Skip numeric literals wholesale (incl. suffixes like 0.5f32)
            // so their suffixes don't read as identifiers.
            while i < bytes.len()
                && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'.')
            {
                // `0..n` range: stop before a second consecutive dot.
                if bytes[i] == b'.' && i + 1 < bytes.len() && bytes[i + 1] == b'.' {
                    break;
                }
                i += 1;
            }
            continue;
        }
        i += 1;
    }
    out
}

/// The next non-whitespace byte at or after `from`, if any.
pub fn next_nonspace(sanitized: &str, from: usize) -> Option<(usize, u8)> {
    sanitized.as_bytes()[from..]
        .iter()
        .enumerate()
        .find(|(_, b)| !b.is_ascii_whitespace())
        .map(|(k, &b)| (from + k, b))
}

/// The previous non-whitespace byte strictly before `before`, if any.
pub fn prev_nonspace(sanitized: &str, before: usize) -> Option<(usize, u8)> {
    sanitized.as_bytes()[..before]
        .iter()
        .enumerate()
        .rev()
        .find(|(_, b)| !b.is_ascii_whitespace())
        .map(|(k, &b)| (k, b))
}

/// Line ranges (1-based, inclusive) of test-only code: items annotated
/// `#[cfg(test)]`, `#[cfg(any(.., test, ..))]` or `#[test]`.
pub fn test_regions(sanitized: &str) -> Vec<(usize, usize)> {
    let bytes = sanitized.as_bytes();
    let mut regions = Vec::new();
    let mut search = 0usize;
    while let Some(found) = find_test_attr(sanitized, search) {
        let (attr_end, attr_line) = found;
        // The attribute applies to the next item: either a braced item
        // (`mod tests { .. }`, `fn case() { .. }`) or a `;`-terminated one
        // (`use ..;`). Whichever delimiter comes first wins.
        let mut j = attr_end;
        let mut depth = 0usize;
        let mut start_line = attr_line;
        let mut line = attr_line;
        let mut end = None;
        while j < bytes.len() {
            match bytes[j] {
                b'\n' => line += 1,
                b'{' => {
                    if depth == 0 {
                        start_line = attr_line;
                    }
                    depth += 1;
                }
                b'}' => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        end = Some((start_line, line));
                        break;
                    }
                }
                b';' if depth == 0 => {
                    end = Some((attr_line, line));
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        match end {
            Some(range) => regions.push(range),
            None => regions.push((attr_line, line)),
        }
        search = j.max(attr_end + 1);
    }
    regions
}

/// Finds the next test attribute at or after `from`; returns the byte
/// offset just past the closing `]` and the attribute's line number.
fn find_test_attr(sanitized: &str, from: usize) -> Option<(usize, usize)> {
    let bytes = sanitized.as_bytes();
    let mut i = from;
    while i + 1 < bytes.len() {
        if bytes[i] == b'#' && bytes[i + 1] == b'[' {
            // Find the matching `]` (attributes do not nest brackets except
            // in literals, which are already blanked).
            let mut j = i + 2;
            let mut depth = 1usize;
            while j < bytes.len() && depth > 0 {
                match bytes[j] {
                    b'[' => depth += 1,
                    b']' => depth -= 1,
                    _ => {}
                }
                j += 1;
            }
            let body = &sanitized[i + 2..j.saturating_sub(1)];
            let compact: String = body.chars().filter(|c| !c.is_whitespace()).collect();
            let is_test = compact == "test"
                || compact.starts_with("cfg(test")
                || (compact.starts_with("cfg(") && compact.contains("(test"))
                || compact.contains(",test,")
                || compact.contains(",test)");
            if is_test {
                let line = 1 + sanitized[..i].bytes().filter(|&b| b == b'\n').count();
                return Some((j, line));
            }
            i = j;
            continue;
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let src = r#"let x = "Instant::now()"; // Instant here too
let y = 1;"#;
        let s = scan(src);
        assert!(!s.sanitized.contains("Instant"));
        assert!(s.sanitized.contains("let y = 1;"));
        assert_eq!(s.comments.len(), 1);
        assert!(s.comments[0].1.contains("Instant here too"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let src = r##"let x = r#"HashMap"#; let z = 2;"##;
        let s = scan(src);
        assert!(!s.sanitized.contains("HashMap"));
        assert!(s.sanitized.contains("let z = 2;"));
    }

    #[test]
    fn byte_and_raw_byte_strings_are_blanked() {
        let src = r##"let a = b"Instant"; let b = br#"HashMap"#; let c = 3;"##;
        let s = scan(src);
        assert!(!s.sanitized.contains("Instant"), "{}", s.sanitized);
        assert!(!s.sanitized.contains("HashMap"), "{}", s.sanitized);
        assert!(s.sanitized.contains("let c = 3;"));
        // Blanking is span-correct: byte offsets are unchanged.
        assert_eq!(s.sanitized.len(), src.len());
    }

    #[test]
    fn raw_strings_with_hashes_keep_spans_and_swallow_fake_closers() {
        // `"#` inside an `r##` string must not close it; `//` inside must
        // not read as a comment.
        let src = r###"let x = r##"tail"# // unwrap()"##; let y = 1;"###;
        let s = scan(src);
        assert!(!s.sanitized.contains("unwrap"), "{}", s.sanitized);
        assert!(s.sanitized.contains("let y = 1;"), "{}", s.sanitized);
        assert!(s.comments.is_empty(), "{:?}", s.comments);
        assert_eq!(s.sanitized.len(), src.len());
    }

    #[test]
    fn raw_identifiers_are_not_raw_strings() {
        let s = scan("let r#match = 1; let y = r#match;");
        assert!(s.sanitized.contains("let y = r#match;"));
    }

    #[test]
    fn nested_block_comments_blank_as_one_span() {
        let src = "a\n/* outer /* inner\n*/ tail */\nb = 2;";
        let s = scan(src);
        assert!(!s.sanitized.contains("tail"), "{}", s.sanitized);
        assert!(s.sanitized.contains("b = 2;"));
        assert_eq!(s.comments.len(), 1);
        assert!(s.comments[0].1.contains("inner"));
        // Line numbers survive the multi-line blanking.
        let ids = idents(&s.sanitized);
        assert_eq!(ids.last().map(|i| (i.text, i.line)), Some(("b", 4)));
    }

    #[test]
    fn char_literals_blank_but_lifetimes_survive() {
        let s = scan("let c = 'x'; fn f<'a>(v: &'a str) {}");
        assert!(!s.sanitized.contains('x'));
        assert!(s.sanitized.contains("'a str"));
    }

    #[test]
    fn line_numbers_are_preserved() {
        let src = "a\n/* multi\nline */\nb";
        let s = scan(src);
        let ids = idents(&s.sanitized);
        assert_eq!(ids[0].text, "a");
        assert_eq!(ids[0].line, 1);
        assert_eq!(ids[1].text, "b");
        assert_eq!(ids[1].line, 4);
    }

    #[test]
    fn test_region_covers_cfg_test_module() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let s = scan(src);
        let regions = test_regions(&s.sanitized);
        assert_eq!(regions, vec![(2, 5)]);
    }

    #[test]
    fn test_region_handles_semicolon_items() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn real() {}\n";
        let s = scan(src);
        let regions = test_regions(&s.sanitized);
        assert_eq!(regions, vec![(1, 2)]);
    }

    #[test]
    fn numeric_suffixes_are_not_idents() {
        let s = scan("let a = 0.5f32 + 1_000u64;");
        let names: Vec<&str> = idents(&s.sanitized).iter().map(|i| i.text).collect();
        assert_eq!(names, vec!["let", "a"]);
    }
}
