//! CLI entry point: `cargo xtask analyze [--index-audit]`.

use std::path::PathBuf;
use std::process::ExitCode;

use xtask::lints::Options;

fn workspace_root() -> PathBuf {
    // xtask lives at <root>/crates/xtask; the tool only ever analyses the
    // workspace it was compiled from, so a compile-time path is exact.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Options::default();
    let mut command = None;
    for arg in &args {
        match arg.as_str() {
            "analyze" => command = Some("analyze"),
            "--index-audit" => opts.index_audit = true,
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n");
                print_help();
                return ExitCode::FAILURE;
            }
        }
    }
    if command != Some("analyze") {
        print_help();
        return ExitCode::FAILURE;
    }

    let root = workspace_root();
    let analysis = match xtask::analyze_workspace(&root, opts) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: failed to scan workspace: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut errors = 0usize;
    let mut warnings = 0usize;
    for d in &analysis.diagnostics {
        println!("{d}\n");
        if d.lint.is_deny() {
            errors += 1;
        } else {
            warnings += 1;
        }
    }
    println!(
        "specsync-analyze: {} files scanned, {errors} error(s), {warnings} warning(s)",
        analysis.files_scanned
    );
    if errors > 0 {
        println!(
            "\nIntentional violations need an annotation with a reason:\n  \
             // specsync-allow(<lint>): <why this is sound>"
        );
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn print_help() {
    println!(
        "cargo xtask analyze [--index-audit]\n\n\
         Enforces the SpecSync determinism & safety invariants (DESIGN.md §10):\n  \
         virtual-time        no Instant/SystemTime/thread_rng/env reads in deterministic crates\n  \
         ordered-iteration   no HashMap/HashSet in deterministic crates\n  \
         no-panic            no .unwrap()/.expect() in library code\n  \
         f32-accumulation    no f32 += reduction loops or sum::<f32>()\n\n\
         --index-audit       also print the advisory unchecked-indexing audit"
    );
}
