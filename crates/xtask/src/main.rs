//! CLI entry point:
//! `cargo xtask analyze [--index-audit] [--format text|json] [--baseline <file>] [--passes all|scanner|semantic]`.

use std::path::PathBuf;
use std::process::ExitCode;

use xtask::json::{to_json_line, Baseline};
use xtask::lints::Options;
use xtask::Passes;

fn workspace_root() -> PathBuf {
    // xtask lives at <root>/crates/xtask; the tool only ever analyses the
    // workspace it was compiled from, so a compile-time path is exact.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Options::default();
    let mut command = None;
    let mut format = Format::Text;
    let mut passes = Passes::All;
    let mut baseline_path: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "analyze" => command = Some("analyze"),
            "--index-audit" => opts.index_audit = true,
            "--format" => match it.next().map(String::as_str) {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                other => {
                    eprintln!(
                        "--format expects `text` or `json`, got {}",
                        other.unwrap_or("nothing")
                    );
                    return ExitCode::FAILURE;
                }
            },
            "--passes" => match it.next().and_then(|v| Passes::from_name(v)) {
                Some(p) => passes = p,
                None => {
                    eprintln!("--passes expects `all`, `scanner` or `semantic`");
                    return ExitCode::FAILURE;
                }
            },
            "--baseline" => match it.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--baseline expects a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n");
                print_help();
                return ExitCode::FAILURE;
            }
        }
    }
    if command != Some("analyze") {
        print_help();
        return ExitCode::FAILURE;
    }

    let baseline = match &baseline_path {
        None => Baseline::default(),
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: cannot read baseline {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            };
            match Baseline::parse(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    let root = workspace_root();
    let analysis = match xtask::analyze_workspace(&root, opts, passes) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: failed to scan workspace: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut baselined = 0usize;
    for d in &analysis.diagnostics {
        if baseline.contains(d) {
            baselined += 1;
            continue;
        }
        match format {
            Format::Text => println!("{d}\n"),
            Format::Json => println!("{}", to_json_line(d)),
        }
        if d.lint.is_deny() {
            errors += 1;
        } else {
            warnings += 1;
        }
    }
    // The summary goes to stderr so `--format json > diags.jsonl`
    // captures diagnostics and nothing else.
    let summary = format!(
        "specsync-analyze: {} files scanned, {errors} error(s), {warnings} warning(s), \
         {baselined} baselined",
        analysis.files_scanned
    );
    match format {
        Format::Text => println!("{summary}"),
        Format::Json => eprintln!("{summary}"),
    }
    if errors > 0 {
        eprintln!(
            "\nIntentional violations need an annotation with a reason:\n  \
             // specsync-allow(<lint>): <why this is sound>"
        );
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn print_help() {
    println!(
        "cargo xtask analyze [--index-audit] [--format text|json] [--baseline <file>] [--passes all|scanner|semantic]\n\n\
         Enforces the SpecSync determinism & safety invariants (DESIGN.md §10, §15).\n\n\
         Scanner lints (per file):\n  \
         virtual-time        no Instant/SystemTime/thread_rng/env reads in deterministic crates\n  \
         ordered-iteration   no HashMap/HashSet in deterministic crates\n  \
         no-panic            no .unwrap()/.expect() in library code\n  \
         f32-accumulation    no f32 += reduction loops or sum::<f32>()\n\n\
         Semantic passes (workspace call graph):\n  \
         lock-order            lock-order cycles and double-acquisition on one path\n  \
         blocking-under-lock   joins, channel ops, sleeps, I/O reached while a guard is live\n  \
         event-exhaustiveness  every telemetry::Event variant handled in every sink and the\n                        \
         trace summarizer; no dead SpecSyncError variants\n\n\
         --index-audit       also print the advisory unchecked-indexing audit\n  \
         --format json       one JSON object per diagnostic on stdout (summary on stderr)\n  \
         --baseline <file>   suppress known diagnostics listed in a JSONL baseline\n  \
         --passes <set>      run `scanner`, `semantic`, or `all` (default)"
    );
}
