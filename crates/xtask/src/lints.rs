//! The SpecSync lint classes and the per-file analysis driver.
//!
//! Every figure the reproduction claims depends on two properties that rot
//! silently as code grows: the discrete-event simulator must be
//! bit-deterministic, and library crates must fail through typed errors
//! rather than panics. These lints make both machine-checked:
//!
//! | lint                | scope          | flags                                             |
//! |---------------------|----------------|---------------------------------------------------|
//! | `virtual-time`      | deterministic  | `Instant`, `SystemTime`, `thread_rng`,            |
//! |                     |                | `from_entropy`, `std::env::var*` branching,       |
//! |                     |                | `sleep(..)` calls (wall-clock blocking)           |
//! | `ordered-iteration` | deterministic  | `HashMap` / `HashSet` (iteration order is         |
//! |                     |                | nondeterministic; use `BTreeMap`/`BTreeSet`)      |
//! | `no-panic`          | library        | `.unwrap()` / `.expect(..)`                       |
//! | `f32-accumulation`  | deterministic  | `+=` loops on `f32` accumulators, `sum::<f32>()`  |
//!
//! Plus the advisory (non-failing) `unchecked-indexing` audit, and two
//! meta-lints: `malformed-allow` (an annotation without a reason) and
//! `unused-allow` (an annotation suppressing nothing).
//!
//! ### Escape hatch
//!
//! A violation that is intentional carries an annotation on the same line
//! or the line above, with a mandatory reason:
//!
//! ```text
//! // specsync-allow(virtual-time): the one sanctioned wall-clock source
//! ```

use std::fmt;

use crate::lexer::{self, Ident, SourceScan};
use crate::workspace::CrateClass;

/// The lint classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Lint {
    VirtualTime,
    OrderedIteration,
    NoPanic,
    F32Accumulation,
    UncheckedIndexing,
    MalformedAllow,
    UnusedAllow,
    LockOrder,
    BlockingUnderLock,
    EventExhaustiveness,
}

impl Lint {
    /// The kebab-case name used in diagnostics and allow annotations.
    pub fn name(self) -> &'static str {
        match self {
            Lint::VirtualTime => "virtual-time",
            Lint::OrderedIteration => "ordered-iteration",
            Lint::NoPanic => "no-panic",
            Lint::F32Accumulation => "f32-accumulation",
            Lint::UncheckedIndexing => "unchecked-indexing",
            Lint::MalformedAllow => "malformed-allow",
            Lint::UnusedAllow => "unused-allow",
            Lint::LockOrder => "lock-order",
            Lint::BlockingUnderLock => "blocking-under-lock",
            Lint::EventExhaustiveness => "event-exhaustiveness",
        }
    }

    fn from_name(name: &str) -> Option<Lint> {
        Some(match name {
            "virtual-time" => Lint::VirtualTime,
            "ordered-iteration" => Lint::OrderedIteration,
            "no-panic" => Lint::NoPanic,
            "f32-accumulation" => Lint::F32Accumulation,
            "unchecked-indexing" => Lint::UncheckedIndexing,
            "lock-order" => Lint::LockOrder,
            "blocking-under-lock" => Lint::BlockingUnderLock,
            "event-exhaustiveness" => Lint::EventExhaustiveness,
            _ => return None,
        })
    }

    /// Whether a diagnostic of this lint fails the analysis run.
    pub fn is_deny(self) -> bool {
        !matches!(self, Lint::UncheckedIndexing | Lint::UnusedAllow)
    }

    /// Whether this lint comes from the semantic (call-graph) stage
    /// rather than the per-file scanner.
    pub fn is_semantic(self) -> bool {
        matches!(
            self,
            Lint::LockOrder | Lint::BlockingUnderLock | Lint::EventExhaustiveness
        )
    }
}

/// One finding, pointing at a file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub lint: Lint,
    /// Workspace-relative path (or fixture label in tests).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let level = if self.lint.is_deny() {
            "error"
        } else {
            "warning"
        };
        writeln!(f, "{level}[{}]: {}", self.lint.name(), self.message)?;
        write!(f, "  --> {}:{}", self.file, self.line)
    }
}

/// A parsed `specsync-allow` annotation.
#[derive(Debug)]
pub(crate) struct Allow {
    pub(crate) lint: Lint,
    /// File the annotation sits in (diagnostic label).
    pub(crate) file: String,
    /// Line the annotation sits on; it suppresses this line and the next.
    pub(crate) line: usize,
    pub(crate) used: bool,
}

const ALLOW_MARKER: &str = "specsync-allow(";

/// Extracts allow annotations from a file's comments. Malformed
/// annotations (unknown lint, missing `: reason`) become diagnostics —
/// a suppression that silently fails open would defeat the pass.
pub(crate) fn parse_allows(
    scanned: &SourceScan,
    file: &str,
    diags: &mut Vec<Diagnostic>,
) -> Vec<Allow> {
    let mut allows = Vec::new();
    for (line, text) in &scanned.comments {
        let mut rest = text.as_str();
        while let Some(pos) = rest.find(ALLOW_MARKER) {
            let after = &rest[pos + ALLOW_MARKER.len()..];
            let Some(close) = after.find(')') else {
                diags.push(Diagnostic {
                    lint: Lint::MalformedAllow,
                    file: file.to_string(),
                    line: *line,
                    message: "unclosed `specsync-allow(` annotation".into(),
                });
                break;
            };
            let name = after[..close].trim();
            let tail = &after[close + 1..];
            match Lint::from_name(name) {
                Some(lint) => {
                    let reason = tail.strip_prefix(':').map(str::trim);
                    match reason {
                        Some(r) if !r.is_empty() => allows.push(Allow {
                            lint,
                            file: file.to_string(),
                            line: *line,
                            used: false,
                        }),
                        _ => diags.push(Diagnostic {
                            lint: Lint::MalformedAllow,
                            file: file.to_string(),
                            line: *line,
                            message: format!(
                                "`specsync-allow({name})` needs a reason: \
                                 `// specsync-allow({name}): <why this is sound>`"
                            ),
                        }),
                    }
                }
                None => diags.push(Diagnostic {
                    lint: Lint::MalformedAllow,
                    file: file.to_string(),
                    line: *line,
                    message: format!("unknown lint `{name}` in specsync-allow annotation"),
                }),
            }
            rest = tail;
        }
    }
    allows
}

/// Analysis options.
#[derive(Debug, Clone, Copy, Default)]
pub struct Options {
    /// Also run the (noisy, advisory) unchecked-indexing audit.
    pub index_audit: bool,
}

/// Runs every applicable lint over one file's contents.
///
/// `file` is used only for labeling diagnostics; `class` decides which
/// lints apply. Test regions (`#[cfg(test)]`, `#[test]`) are exempt from
/// all lints.
pub fn analyze_source(
    file: &str,
    source: &str,
    class: CrateClass,
    opts: Options,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if class == CrateClass::Harness {
        return diags;
    }
    let scanned = lexer::scan(source);
    let mut allows = parse_allows(&scanned, file, &mut diags);
    let test_regions = lexer::test_regions(&scanned.sanitized);

    let raw = raw_file_lints(file, &scanned, class, opts);
    apply_allows(raw, &mut allows, &test_regions, &mut diags);
    report_unused_allows(&allows, &test_regions, &mut diags);
    diags.sort_by(|a, b| (a.line, a.lint.name()).cmp(&(b.line, b.lint.name())));
    diags
}

/// Runs the per-file (scanner) lints without any allow suppression.
pub(crate) fn raw_file_lints(
    file: &str,
    scanned: &SourceScan,
    class: CrateClass,
    opts: Options,
) -> Vec<Diagnostic> {
    let mut raw: Vec<Diagnostic> = Vec::new();
    if class == CrateClass::Harness {
        return raw;
    }
    let idents = lexer::idents(&scanned.sanitized);
    no_panic(file, &scanned.sanitized, &idents, &mut raw);
    if class == CrateClass::Deterministic {
        virtual_time(file, &scanned.sanitized, &idents, &mut raw);
        ordered_iteration(file, &idents, &mut raw);
        f32_accumulation(file, &scanned.sanitized, &mut raw);
    }
    if opts.index_audit {
        unchecked_indexing(file, &scanned.sanitized, &idents, &mut raw);
    }
    raw
}

/// Applies suppressions: an allow on line L covers findings of its lint
/// on lines L and L+1; findings in test regions are dropped outright.
pub(crate) fn apply_allows(
    raw: Vec<Diagnostic>,
    allows: &mut [Allow],
    test_regions: &[(usize, usize)],
    out: &mut Vec<Diagnostic>,
) {
    let in_test = |line: usize| test_regions.iter().any(|&(a, b)| line >= a && line <= b);
    for d in raw {
        if in_test(d.line) {
            continue;
        }
        let mut suppressed = false;
        for a in allows.iter_mut() {
            if a.lint == d.lint && (a.line == d.line || a.line + 1 == d.line) {
                a.used = true;
                suppressed = true;
            }
        }
        if !suppressed {
            out.push(d);
        }
    }
}

/// Reports allows that suppressed nothing (advisory).
pub(crate) fn report_unused_allows(
    allows: &[Allow],
    test_regions: &[(usize, usize)],
    out: &mut Vec<Diagnostic>,
) {
    let in_test = |line: usize| test_regions.iter().any(|&(a, b)| line >= a && line <= b);
    for a in allows {
        if !a.used && !in_test(a.line) {
            out.push(Diagnostic {
                lint: Lint::UnusedAllow,
                file: a.file.clone(),
                line: a.line,
                message: format!(
                    "specsync-allow({}) suppresses nothing — remove it",
                    a.lint.name()
                ),
            });
        }
    }
}

/// `virtual-time`: wall-clock types, entropy-seeded RNGs, sleeps, and
/// environment reads are forbidden in deterministic crates — each one
/// makes two same-seed runs diverge. Fault injection (`simnet::fault`)
/// falls under the same rule: a chaos schedule must come from seeded
/// `RngStreams` draws and virtual-time events, never from the host.
fn virtual_time(file: &str, sanitized: &str, idents: &[Ident<'_>], out: &mut Vec<Diagnostic>) {
    for (k, id) in idents.iter().enumerate() {
        let flagged = match id.text {
            "sleep" => {
                // `thread::sleep(..)`, `std::thread::sleep(..)`, or a bare
                // `sleep(..)` call: blocks on the wall clock. Identifiers
                // merely *named* sleep (fields, non-call uses) pass.
                let is_call = lexer::next_nonspace(sanitized, id.offset + id.text.len())
                    .is_some_and(|(_, b)| b == b'(');
                is_call.then(|| {
                    "`sleep(..)` blocks on the wall clock; deterministic code \
                     advances time through the event queue (real-threaded \
                     pacing must annotate its sanctioned sleeps)"
                        .to_string()
                })
            }
            "Instant" | "SystemTime" => Some(format!(
                "`{}` is wall-clock state; deterministic crates must use \
                 `specsync_simnet::VirtualTime`",
                id.text
            )),
            "thread_rng" | "from_entropy" => Some(format!(
                "`{}` draws OS entropy; derive streams from \
                 `specsync_simnet::RngStreams` instead",
                id.text
            )),
            "env" => {
                // `env::var`, `env::var_os`, `env::vars`, `env::args`:
                // environment-dependent branching.
                let next_is_path = lexer::next_nonspace(sanitized, id.offset + id.text.len())
                    .is_some_and(|(_, b)| b == b':');
                let accessor = idents.get(k + 1).map(|n| n.text);
                if next_is_path
                    && matches!(
                        accessor,
                        Some("var" | "var_os" | "vars" | "vars_os" | "args")
                    )
                {
                    Some(format!(
                        "`env::{}` makes behaviour depend on the environment; \
                         plumb configuration through typed config structs",
                        accessor.unwrap_or_default()
                    ))
                } else {
                    None
                }
            }
            _ => None,
        };
        if let Some(message) = flagged {
            out.push(Diagnostic {
                lint: Lint::VirtualTime,
                file: file.to_string(),
                line: id.line,
                message,
            });
        }
    }
}

/// `ordered-iteration`: `HashMap`/`HashSet` iteration order varies run to
/// run (and across std versions); deterministic crates must use the BTree
/// variants or sort explicitly. The lint flags the *types* — membership-only
/// uses are still one refactor away from someone iterating them.
fn ordered_iteration(file: &str, idents: &[Ident<'_>], out: &mut Vec<Diagnostic>) {
    for id in idents {
        if matches!(id.text, "HashMap" | "HashSet") {
            out.push(Diagnostic {
                lint: Lint::OrderedIteration,
                file: file.to_string(),
                line: id.line,
                message: format!(
                    "`{}` has nondeterministic iteration order; use `BTree{}` \
                     (or sort before iterating)",
                    id.text,
                    &id.text[4..]
                ),
            });
        }
    }
}

/// `no-panic`: library crates surface failures as typed `Result`s
/// (`SpecSyncError`); `.unwrap()`/`.expect(..)` turn recoverable states
/// into aborts in whatever binary embeds the crate.
fn no_panic(file: &str, sanitized: &str, idents: &[Ident<'_>], out: &mut Vec<Diagnostic>) {
    for id in idents {
        if !matches!(id.text, "unwrap" | "expect") {
            continue;
        }
        let preceded_by_dot =
            lexer::prev_nonspace(sanitized, id.offset).is_some_and(|(_, b)| b == b'.');
        let followed_by_paren = lexer::next_nonspace(sanitized, id.offset + id.text.len())
            .is_some_and(|(_, b)| b == b'(');
        if preceded_by_dot && followed_by_paren {
            out.push(Diagnostic {
                lint: Lint::NoPanic,
                file: file.to_string(),
                line: id.line,
                message: format!(
                    "`.{}()` panics in library code; return a typed error \
                     (`SpecSyncError`) or use a non-panicking combinator",
                    id.text
                ),
            });
        }
    }
}

/// `f32-accumulation`: long `+=` reductions in `f32` lose low-order bits
/// (and made PR 1's clip-norm drift at ImageNet scale); accumulate in
/// `f64` and round once. Heuristic: a `let mut x: f32 = ..` /
/// `let mut x = 0.0f32` binding followed by `x +=` in the same function,
/// plus any `sum::<f32>()` turbofish.
fn f32_accumulation(file: &str, sanitized: &str, out: &mut Vec<Diagnostic>) {
    let mut acc_names: Vec<String> = Vec::new();
    for (lineno, line) in sanitized.lines().enumerate() {
        let lineno = lineno + 1;
        let trimmed = line.trim_start();
        // A new fn scope: earlier accumulator names no longer apply.
        if trimmed.starts_with("fn ") || trimmed.starts_with("pub fn ") || trimmed.contains(" fn ")
        {
            acc_names.clear();
        }
        if let Some(name) = f32_accumulator_binding(trimmed) {
            acc_names.push(name);
        }
        if let Some(pos) = line.find("+=") {
            let lhs = line[..pos].trim();
            let lhs_ident = lhs
                .rsplit(|c: char| !c.is_alphanumeric() && c != '_')
                .next();
            if let Some(lhs_ident) = lhs_ident {
                if acc_names.iter().any(|n| n == lhs_ident) {
                    out.push(Diagnostic {
                        lint: Lint::F32Accumulation,
                        file: file.to_string(),
                        line: lineno,
                        message: format!(
                            "`{lhs_ident} +=` accumulates in f32; reduce in f64 \
                             and convert once at the end"
                        ),
                    });
                }
            }
        }
        if line.contains("sum::<f32>") {
            out.push(Diagnostic {
                lint: Lint::F32Accumulation,
                file: file.to_string(),
                line: lineno,
                message: "`sum::<f32>()` reduces in f32; sum in f64 and convert once".into(),
            });
        }
    }
}

/// If `line` binds a mutable f32 accumulator, returns its name. Requires an
/// explicit f32 marker — `: f32` or an `f32`-suffixed literal — because an
/// unsuffixed `0.0` defaults to f64.
fn f32_accumulator_binding(line: &str) -> Option<String> {
    let rest = line.strip_prefix("let mut ")?;
    let name_end = rest
        .find(|c: char| !c.is_alphanumeric() && c != '_')
        .unwrap_or(rest.len());
    let name = &rest[..name_end];
    if name.is_empty() {
        return None;
    }
    let tail = &rest[name_end..];
    let typed_f32 = tail.trim_start().starts_with(": f32");
    let literal_f32 = tail.contains("f32")
        && (tail.contains("0f32") || tail.contains("0.0f32") || tail.contains("0.0_f32"));
    if typed_f32 || literal_f32 {
        Some(name.to_string())
    } else {
        None
    }
}

/// Advisory audit: `expr[index]` slice indexing panics on out-of-bounds.
/// Far too common (and often contract-checked) to deny, but worth an
/// occasional sweep: run with `--index-audit`.
fn unchecked_indexing(
    file: &str,
    sanitized: &str,
    idents: &[Ident<'_>],
    out: &mut Vec<Diagnostic>,
) {
    for id in idents {
        let after = id.offset + id.text.len();
        if sanitized.as_bytes().get(after) == Some(&b'[')
            && !matches!(
                id.text,
                "vec" | "cfg" | "derive" | "allow" | "warn" | "deny"
            )
        {
            out.push(Diagnostic {
                lint: Lint::UncheckedIndexing,
                file: file.to_string(),
                line: id.line,
                message: format!("`{}[..]` indexing panics when out of bounds", id.text),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(src: &str) -> Vec<Diagnostic> {
        analyze_source(
            "fixture.rs",
            src,
            CrateClass::Deterministic,
            Options::default(),
        )
    }

    #[test]
    fn instant_is_flagged_in_deterministic_code() {
        let d = det("use std::time::Instant;\nfn f() { let t = Instant::now(); }\n");
        assert!(d.iter().filter(|d| d.lint == Lint::VirtualTime).count() >= 2);
    }

    #[test]
    fn sleep_call_is_flagged_in_deterministic_code() {
        let d = det("fn f() { std::thread::sleep(std::time::Duration::from_millis(1)); }\n");
        assert!(d.iter().any(|d| d.lint == Lint::VirtualTime), "{d:?}");
    }

    #[test]
    fn sleep_named_but_not_called_is_clean() {
        let d = det("struct S { sleep: u64 }\nfn f(s: &S) -> u64 { s.sleep }\n");
        assert!(d.is_empty(), "unexpected: {d:?}");
    }

    #[test]
    fn allow_with_reason_suppresses() {
        let d = det(
            "// specsync-allow(virtual-time): fixture needs wall clock\nuse std::time::Instant;\n",
        );
        assert!(d.is_empty(), "unexpected: {d:?}");
    }

    #[test]
    fn allow_without_reason_is_malformed() {
        let d = det("// specsync-allow(virtual-time)\nuse std::time::Instant;\n");
        assert!(d.iter().any(|d| d.lint == Lint::MalformedAllow));
        assert!(d.iter().any(|d| d.lint == Lint::VirtualTime));
    }

    #[test]
    fn unused_allow_is_reported() {
        let d = det("// specsync-allow(no-panic): nothing here\nfn f() {}\n");
        assert!(d.iter().any(|d| d.lint == Lint::UnusedAllow));
    }

    #[test]
    fn unwrap_in_tests_is_exempt() {
        let d = det("#[cfg(test)]\nmod tests {\n    fn t() { Some(1).unwrap(); }\n}\n");
        assert!(d.is_empty(), "unexpected: {d:?}");
    }

    #[test]
    fn unwrap_or_is_not_flagged() {
        let d = det("fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n");
        assert!(d.is_empty(), "unexpected: {d:?}");
    }

    #[test]
    fn strings_do_not_trip_lints() {
        let d = det("fn f() -> &'static str { \"Instant HashMap unwrap()\" }\n");
        assert!(d.is_empty(), "unexpected: {d:?}");
    }

    #[test]
    fn library_class_skips_determinism_lints() {
        let src =
            "use std::collections::HashMap;\nfn f() { let _ = Option::<u32>::None.unwrap(); }\n";
        let d = analyze_source("fixture.rs", src, CrateClass::Library, Options::default());
        assert!(d.iter().all(|d| d.lint == Lint::NoPanic));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn env_var_is_flagged() {
        let d = det("fn f() { let _ = std::env::var(\"X\"); }\n");
        assert!(d.iter().any(|d| d.lint == Lint::VirtualTime));
    }

    #[test]
    fn f32_accumulator_is_flagged() {
        let d = det("fn f(xs: &[f32]) -> f32 {\n    let mut acc: f32 = 0.0;\n    for x in xs { acc += x; }\n    acc\n}\n");
        assert!(d.iter().any(|d| d.lint == Lint::F32Accumulation), "{d:?}");
    }

    #[test]
    fn f64_accumulator_is_clean() {
        let d = det("fn f(xs: &[f32]) -> f64 {\n    let mut acc = 0.0f64;\n    for x in xs { acc += *x as f64; }\n    acc\n}\n");
        assert!(d.is_empty(), "unexpected: {d:?}");
    }

    #[test]
    fn index_audit_is_opt_in_and_advisory() {
        let src = "fn f(xs: &[u32], i: usize) -> u32 { xs[i] }\n";
        let quiet = det(src);
        assert!(quiet.is_empty());
        let audited = analyze_source(
            "fixture.rs",
            src,
            CrateClass::Deterministic,
            Options { index_audit: true },
        );
        assert!(audited.iter().any(|d| d.lint == Lint::UncheckedIndexing));
        assert!(audited.iter().all(|d| !d.lint.is_deny()));
    }
}
