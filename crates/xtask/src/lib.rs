//! `specsync-analyze`: the workspace determinism & safety lint pass.
//!
//! Run it as `cargo xtask analyze` (the alias lives in
//! `.cargo/config.toml`). See DESIGN.md §10 for the per-file scanner
//! lints and §15 for the semantic passes (lock-order,
//! blocking-under-lock, event-exhaustiveness); the module docs on
//! [`lints`], [`parser`], [`graph`] and [`semantic`] give the short
//! version.
//!
//! The crate is a library plus a thin `main` so the fixture regression
//! tests in `tests/` can drive [`lints::analyze_source`] (per-file
//! scanner) and [`analyze_sources`] (whole-model pipeline) directly
//! against deliberately-broken sources without touching the real
//! workspace.

pub mod graph;
pub mod json;
pub mod lexer;
pub mod lints;
pub mod parser;
pub mod semantic;
pub mod workspace;

use std::fs;
use std::path::Path;

use lints::{Diagnostic, Options};
use workspace::CrateClass;

/// Which analysis stages to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Passes {
    /// Scanner lints + semantic passes.
    #[default]
    All,
    /// Per-file scanner lints only (PR 2 behaviour).
    Scanner,
    /// Call-graph passes only.
    Semantic,
}

impl Passes {
    pub fn from_name(name: &str) -> Option<Passes> {
        Some(match name {
            "all" => Passes::All,
            "scanner" => Passes::Scanner,
            "semantic" => Passes::Semantic,
            _ => return None,
        })
    }

    fn scanner(self) -> bool {
        matches!(self, Passes::All | Passes::Scanner)
    }

    fn semantic(self) -> bool {
        matches!(self, Passes::All | Passes::Semantic)
    }
}

/// One source file fed into the whole-model pipeline.
#[derive(Debug)]
pub struct SourceSpec {
    /// Workspace-relative path (or fixture label in tests).
    pub label: String,
    pub source: String,
    pub class: CrateClass,
    /// Participates only in the event-exhaustiveness pass (the
    /// designated trace summarizer — a harness binary otherwise exempt).
    pub event_only: bool,
}

/// The outcome of analysing a whole workspace.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Every diagnostic, in (file, line, lint) order.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Analysis {
    /// Whether any deny-level diagnostic was produced.
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(|d| d.lint.is_deny())
    }
}

/// Runs the full pipeline — scanner lints per file, then the semantic
/// passes over the joint model — and applies `specsync-allow`
/// suppression across both. An allow is "used" if it suppressed at least
/// one finding from either stage; unused allows are reported (advisory).
pub fn analyze_sources(specs: &[SourceSpec], opts: Options, passes: Passes) -> Vec<Diagnostic> {
    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut allows: Vec<lints::Allow> = Vec::new();
    let mut raw: Vec<Diagnostic> = Vec::new();
    let mut parsed: Vec<parser::ParsedFile> = Vec::new();
    // Test regions per label, for filtering semantic diagnostics too.
    let mut regions: Vec<(String, Vec<(usize, usize)>)> = Vec::new();

    for spec in specs {
        let scanned = lexer::scan(&spec.source);
        allows.extend(lints::parse_allows(&scanned, &spec.label, &mut diags));
        let test_regions = lexer::test_regions(&scanned.sanitized);
        if passes.scanner() && !spec.event_only {
            raw.extend(lints::raw_file_lints(
                &spec.label,
                &scanned,
                spec.class,
                opts,
            ));
        }
        if passes.semantic() {
            parsed.push(parser::parse_file(
                &spec.label,
                &scanned.sanitized,
                spec.class,
                spec.event_only,
                &test_regions,
            ));
        }
        regions.push((spec.label.clone(), test_regions));
    }

    if passes.semantic() {
        let graph = graph::Graph::build(&parsed);
        raw.extend(semantic::run(&parsed, &graph));
    }

    // Suppression is per-file: partition raw findings by label so each
    // file's allows and test regions apply to its own findings only.
    raw.sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
    for (label, test_regions) in &regions {
        let file_raw: Vec<Diagnostic> = raw.iter().filter(|d| &d.file == label).cloned().collect();
        let (mut local, rest): (Vec<_>, Vec<_>) = std::mem::take(&mut allows)
            .into_iter()
            .partition(|a| &a.file == label);
        allows = rest;
        lints::apply_allows(file_raw, &mut local, test_regions, &mut diags);
        // Only call an allow stale if the stage its lint belongs to
        // actually ran — a scanner-only run can't judge semantic allows,
        // and vice versa.
        let reportable: Vec<lints::Allow> = local
            .into_iter()
            .filter(|a| {
                if a.lint.is_semantic() {
                    passes.semantic()
                } else {
                    passes.scanner()
                }
            })
            .collect();
        lints::report_unused_allows(&reportable, test_regions, &mut diags);
    }

    diags.sort_by(|a, b| {
        (&a.file, a.line, a.lint.name(), &a.message).cmp(&(
            &b.file,
            b.line,
            b.lint.name(),
            &b.message,
        ))
    });
    diags.dedup();
    diags
}

/// Analyses every covered file under `root`.
pub fn analyze_workspace(root: &Path, opts: Options, passes: Passes) -> std::io::Result<Analysis> {
    let files = workspace::collect_files(root)?;
    let mut specs = Vec::with_capacity(files.len());
    for file in &files {
        specs.push(SourceSpec {
            label: file.label.clone(),
            source: fs::read_to_string(&file.path)?,
            class: file.class,
            event_only: file.event_only,
        });
    }
    Ok(Analysis {
        files_scanned: specs.len(),
        diagnostics: analyze_sources(&specs, opts, passes),
    })
}
