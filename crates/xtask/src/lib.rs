//! `specsync-analyze`: the workspace determinism & safety lint pass.
//!
//! Run it as `cargo xtask analyze` (the alias lives in
//! `.cargo/config.toml`). See DESIGN.md §10 for the catalogue of lints,
//! their rationale, and the `specsync-allow` annotation convention; the
//! module docs on [`lints`] give the short version.
//!
//! The crate is a library plus a thin `main` so the fixture regression
//! tests in `tests/` can drive [`lints::analyze_source`] directly against
//! deliberately-broken sources without touching the real workspace.

pub mod lexer;
pub mod lints;
pub mod workspace;

use std::fs;
use std::path::Path;

use lints::{Diagnostic, Options};

/// The outcome of analysing a whole workspace.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Every diagnostic, in (file, line) order.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Analysis {
    /// Whether any deny-level diagnostic was produced.
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(|d| d.lint.is_deny())
    }
}

/// Analyses every covered file under `root`.
pub fn analyze_workspace(root: &Path, opts: Options) -> std::io::Result<Analysis> {
    let files = workspace::collect_files(root)?;
    let mut analysis = Analysis {
        files_scanned: files.len(),
        ..Analysis::default()
    };
    for file in &files {
        let source = fs::read_to_string(&file.path)?;
        analysis.diagnostics.extend(lints::analyze_source(
            &file.label,
            &source,
            file.class,
            opts,
        ));
    }
    Ok(analysis)
}
