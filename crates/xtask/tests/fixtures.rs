//! Regression fixtures: each lint class must keep catching a deliberately
//! broken source, and the real workspace must keep analysing clean. These
//! are the tests that stop the analyzer itself from rotting — a lexer or
//! suppression bug that silently stopped reporting a class would show up
//! here, not in CI's green "0 errors".

use std::path::Path;

use xtask::lints::{analyze_source, Lint, Options};
use xtask::workspace::CrateClass;

fn analyze_det(source: &str) -> Vec<xtask::lints::Diagnostic> {
    analyze_source(
        "fixture.rs",
        source,
        CrateClass::Deterministic,
        Options::default(),
    )
}

fn lines_of(diags: &[xtask::lints::Diagnostic], lint: Lint) -> Vec<usize> {
    diags
        .iter()
        .filter(|d| d.lint == lint)
        .map(|d| d.line)
        .collect()
}

#[test]
fn virtual_time_fixture_instant_in_simnet_style_crate() {
    // The scenario the lint exists for: someone "just times" something in
    // the deterministic simulator.
    let fixture = r#"
use std::time::Instant;

pub fn measure<F: FnOnce()>(f: F) -> u128 {
    let start = Instant::now();
    f();
    start.elapsed().as_micros()
}
"#;
    let diags = analyze_det(fixture);
    let lines = lines_of(&diags, Lint::VirtualTime);
    assert_eq!(lines, vec![2, 5], "expected both Instant sites: {diags:?}");
}

#[test]
fn virtual_time_fixture_entropy_and_env() {
    let fixture = r#"
pub fn seed() -> u64 {
    if std::env::var("SPECSYNC_SEED").is_ok() {
        7
    } else {
        let mut rng = thread_rng();
        0
    }
}
"#;
    let diags = analyze_det(fixture);
    let lines = lines_of(&diags, Lint::VirtualTime);
    assert_eq!(lines.len(), 2, "env::var + thread_rng: {diags:?}");
}

#[test]
fn virtual_time_fixture_sleep_in_runtime_style_crate() {
    // The chaos-era scenario: someone paces a retry loop with a real
    // sleep instead of scheduling a virtual-time event (or the runtime's
    // annotated, injected-clock pacing).
    let fixture = r#"
use std::thread;
use std::time::Duration;

pub fn retry_with_backoff(attempts: u32) {
    for k in 0..attempts {
        thread::sleep(Duration::from_millis(1 << k));
    }
}
"#;
    let diags = analyze_det(fixture);
    let lines = lines_of(&diags, Lint::VirtualTime);
    assert_eq!(lines, vec![7], "expected the sleep call site: {diags:?}");

    // The runtime's sanctioned pattern: same code, annotated with a reason.
    let annotated = r#"
use std::thread;
use std::time::Duration;

pub fn pace() {
    // specsync-allow(virtual-time): real-threaded pacing on the injected clock
    thread::sleep(Duration::from_millis(1));
}
"#;
    let diags = analyze_det(annotated);
    assert!(diags.is_empty(), "annotated sleep must pass: {diags:?}");
}

#[test]
fn ordered_iteration_fixture_hashmap_in_core_style_crate() {
    let fixture = r#"
use std::collections::HashMap;

pub fn tally(workers: &[usize]) -> Vec<(usize, u64)> {
    let mut counts: HashMap<usize, u64> = HashMap::new();
    for &w in workers {
        *counts.entry(w).or_insert(0) += 1;
    }
    counts.into_iter().collect()
}
"#;
    let diags = analyze_det(fixture);
    let lines = lines_of(&diags, Lint::OrderedIteration);
    assert_eq!(
        lines,
        vec![2, 5, 5],
        "expected every HashMap site: {diags:?}"
    );
}

#[test]
fn no_panic_fixture_unwrap_in_library_crate() {
    let fixture = r#"
pub fn first_positive(xs: &[f64]) -> f64 {
    let found = xs.iter().find(|x| **x > 0.0).unwrap();
    *found
}

pub fn named(x: Option<u32>) -> u32 {
    x.expect("value must be present")
}
"#;
    let diags = analyze_source(
        "fixture.rs",
        fixture,
        CrateClass::Library,
        Options::default(),
    );
    let lines = lines_of(&diags, Lint::NoPanic);
    assert_eq!(lines, vec![3, 8], "unwrap + expect: {diags:?}");
    // Library crates skip determinism lints entirely.
    assert!(diags.iter().all(|d| d.lint == Lint::NoPanic));
}

#[test]
fn no_panic_fixture_is_silent_for_harness_crates() {
    let fixture = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    let diags = analyze_source(
        "fixture.rs",
        fixture,
        CrateClass::Harness,
        Options::default(),
    );
    assert!(diags.is_empty(), "harness crates are exempt: {diags:?}");
}

#[test]
fn f32_accumulation_fixture_running_sum() {
    let fixture = r#"
pub fn l2(xs: &[f32]) -> f32 {
    let mut sum = 0.0f32;
    for x in xs {
        sum += x * x;
    }
    sum.sqrt()
}

pub fn total(xs: &[f32]) -> f32 {
    xs.iter().copied().sum::<f32>()
}
"#;
    let diags = analyze_det(fixture);
    let lines = lines_of(&diags, Lint::F32Accumulation);
    assert_eq!(lines, vec![5, 11], "`+=` loop and turbofish sum: {diags:?}");
}

#[test]
fn f32_accumulation_fixture_scope_reset_between_functions() {
    // The accumulator from `a` must not leak into `b`'s scope.
    let fixture = r#"
pub fn a(xs: &[f32]) -> f64 {
    let mut acc: f32 = 0.0;
    acc as f64
}

pub fn b(mut acc: f64, xs: &[f64]) -> f64 {
    for x in xs {
        acc += x;
    }
    acc
}
"#;
    let diags = analyze_det(fixture);
    assert!(diags.is_empty(), "f64 accumulation is fine: {diags:?}");
}

#[test]
fn allow_annotation_suppresses_exactly_its_lint_and_site() {
    let fixture = r#"
// specsync-allow(virtual-time): fixture's sanctioned clock read
use std::time::Instant;

pub fn f() -> Instant {
    Instant::now()
}
"#;
    let diags = analyze_det(fixture);
    // Line 3 is covered by the allow on line 2; lines 5 and 6 are not.
    let lines = lines_of(&diags, Lint::VirtualTime);
    assert_eq!(lines, vec![5, 6], "{diags:?}");
}

#[test]
fn allow_without_reason_fails_closed() {
    let fixture = "// specsync-allow(no-panic)\npub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    let diags = analyze_source(
        "fixture.rs",
        fixture,
        CrateClass::Library,
        Options::default(),
    );
    assert!(diags.iter().any(|d| d.lint == Lint::MalformedAllow));
    assert!(
        diags.iter().any(|d| d.lint == Lint::NoPanic),
        "a malformed allow must not suppress: {diags:?}"
    );
}

#[test]
fn deny_and_advisory_levels_are_stable() {
    assert!(Lint::VirtualTime.is_deny());
    assert!(Lint::OrderedIteration.is_deny());
    assert!(Lint::NoPanic.is_deny());
    assert!(Lint::F32Accumulation.is_deny());
    assert!(Lint::MalformedAllow.is_deny());
    assert!(Lint::LockOrder.is_deny());
    assert!(Lint::BlockingUnderLock.is_deny());
    assert!(Lint::EventExhaustiveness.is_deny());
    assert!(!Lint::UncheckedIndexing.is_deny());
    assert!(!Lint::UnusedAllow.is_deny());
}

#[test]
fn the_real_workspace_analyzes_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let analysis = xtask::analyze_workspace(root, Options::default(), xtask::Passes::All)
        .expect("workspace readable");
    assert!(
        analysis.files_scanned > 40,
        "suspiciously few files scanned"
    );
    let errors: Vec<_> = analysis
        .diagnostics
        .iter()
        .filter(|d| d.lint.is_deny())
        .collect();
    assert!(
        errors.is_empty(),
        "workspace must stay lint-clean:\n{}",
        errors
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
