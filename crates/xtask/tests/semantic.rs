//! Fixture regression tests for the semantic passes (DESIGN.md §15):
//! lock-order, blocking-under-lock, and event-exhaustiveness.
//!
//! Each pass gets a true-positive (a seeded violation the pass must
//! catch, at the right line), a true-negative (the idiomatic fix, which
//! must stay clean), and an allow-suppressed case (the same violation
//! under `specsync-allow`, which must produce *no* diagnostics — the
//! allow is consumed, so no unused-allow warning either).
//!
//! Fixtures run through [`xtask::analyze_sources`] with
//! [`Passes::Semantic`] so the per-file scanner lints (covered by
//! `tests/fixtures.rs`) don't add noise.

use std::path::Path;
use std::time::Instant;

use xtask::lints::{Diagnostic, Lint, Options};
use xtask::workspace::CrateClass;
use xtask::{analyze_sources, Passes, SourceSpec};

fn spec(label: &str, source: &str) -> SourceSpec {
    SourceSpec {
        label: label.to_string(),
        source: source.to_string(),
        class: CrateClass::Deterministic,
        event_only: false,
    }
}

fn event_only_spec(label: &str, source: &str) -> SourceSpec {
    SourceSpec {
        label: label.to_string(),
        source: source.to_string(),
        class: CrateClass::Harness,
        event_only: true,
    }
}

fn run(specs: &[SourceSpec]) -> Vec<Diagnostic> {
    analyze_sources(specs, Options::default(), Passes::Semantic)
}

/// 1-based line of the first source line containing `marker`.
fn line_of(source: &str, marker: &str) -> usize {
    source
        .lines()
        .position(|l| l.contains(marker))
        .map(|i| i + 1)
        .unwrap_or_else(|| panic!("marker {marker:?} not in fixture"))
}

fn only_lint(diags: &[Diagnostic], lint: Lint) -> Vec<&Diagnostic> {
    diags.iter().filter(|d| d.lint == lint).collect()
}

// ---------------------------------------------------------------------------
// Pass 1: lock-order
// ---------------------------------------------------------------------------

#[test]
fn lock_order_cycle_across_two_methods_is_caught() {
    let src = r#"
struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    fn ab(&self) {
        let ga = self.a.lock();
        let gb = self.b.lock();
        drop(gb);
        drop(ga);
    }
    fn ba(&self) {
        let gb = self.b.lock();
        let ga = self.a.lock();
        drop(ga);
        drop(gb);
    }
}
"#;
    let diags = run(&[spec("fix/cycle.rs", src)]);
    let hits = only_lint(&diags, Lint::LockOrder);
    assert!(
        hits.iter().any(|d| d.message.contains("lock-order cycle")
            && d.message.contains("S.a")
            && d.message.contains("S.b")),
        "expected a cycle diagnostic naming both classes, got: {diags:?}"
    );
}

#[test]
fn double_acquire_through_a_transitive_call_is_caught() {
    let src = r#"
struct T { m: Mutex<u32> }
impl T {
    fn outer(&self) {
        let g = self.m.lock();
        self.inner();
    }
    fn inner(&self) {
        let g = self.m.lock();
        drop(g);
    }
}
"#;
    let diags = run(&[spec("fix/reacquire.rs", src)]);
    let hits = only_lint(&diags, Lint::LockOrder);
    assert_eq!(hits.len(), 1, "got: {diags:?}");
    assert_eq!(hits[0].line, line_of(src, "self.inner()"));
    assert!(hits[0].message.contains("re-acquires lock class `T.m`"));
}

#[test]
fn direct_double_acquire_is_caught_at_the_second_site() {
    let src = r#"
struct T { m: Mutex<u32> }
impl T {
    fn twice(&self) {
        let g1 = self.m.lock();
        let g2 = self.m.lock();
    }
}
"#;
    let diags = run(&[spec("fix/double.rs", src)]);
    let hits = only_lint(&diags, Lint::LockOrder);
    assert_eq!(hits.len(), 1, "got: {diags:?}");
    assert_eq!(hits[0].line, line_of(src, "let g2"));
    assert!(hits[0].message.contains("self-deadlock"));
}

#[test]
fn consistent_lock_order_is_clean() {
    let src = r#"
struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    fn first(&self) {
        let ga = self.a.lock();
        let gb = self.b.lock();
    }
    fn second(&self) {
        let ga = self.a.lock();
        let gb = self.b.lock();
    }
}
"#;
    let diags = run(&[spec("fix/ordered.rs", src)]);
    assert!(diags.is_empty(), "got: {diags:?}");
}

#[test]
fn release_before_reacquire_is_clean() {
    let src = r#"
struct T { m: Mutex<u32> }
impl T {
    fn seq(&self) {
        let g = self.m.lock();
        drop(g);
        let g = self.m.lock();
    }
}
"#;
    let diags = run(&[spec("fix/seq.rs", src)]);
    assert!(diags.is_empty(), "got: {diags:?}");
}

#[test]
fn lock_order_allow_suppresses_and_is_consumed() {
    let src = r#"
struct T { m: Mutex<u32> }
impl T {
    fn outer(&self) {
        let g = self.m.lock();
        // specsync-allow(lock-order): fixture — reentrant by construction
        self.inner();
    }
    fn inner(&self) {
        let g = self.m.lock();
        drop(g);
    }
}
"#;
    let diags = run(&[spec("fix/allowed-cycle.rs", src)]);
    assert!(
        diags.is_empty(),
        "allow must suppress cleanly, got: {diags:?}"
    );
}

// ---------------------------------------------------------------------------
// Pass 2: blocking-under-lock
// ---------------------------------------------------------------------------

#[test]
fn direct_blocking_call_under_lock_is_caught() {
    let src = r#"
fn pump(mu: &Mutex<u32>, tx: &Sender<u32>) {
    let g = mu.lock();
    tx.send(1).unwrap();
}
"#;
    let diags = run(&[spec("fix/block-direct.rs", src)]);
    let hits = only_lint(&diags, Lint::BlockingUnderLock);
    assert_eq!(hits.len(), 1, "got: {diags:?}");
    assert_eq!(hits[0].line, line_of(src, "tx.send"));
    assert!(hits[0].message.contains("while holding lock class(es)"));
}

#[test]
fn transitive_blocking_call_under_lock_is_caught() {
    let src = r#"
fn notify(tx: &Sender<u32>) {
    tx.send(1).unwrap();
}
fn pump(mu: &Mutex<u32>, tx: &Sender<u32>) {
    let g = mu.lock();
    notify(tx);
}
"#;
    let diags = run(&[spec("fix/block-transitive.rs", src)]);
    let hits = only_lint(&diags, Lint::BlockingUnderLock);
    assert_eq!(hits.len(), 1, "got: {diags:?}");
    assert_eq!(hits[0].line, line_of(src, "notify(tx)"));
    assert!(
        hits[0].message.contains("may reach") && hits[0].message.contains("notify"),
        "got: {}",
        hits[0].message
    );
}

#[test]
fn blocking_after_guard_drop_is_clean() {
    let src = r#"
fn pump(mu: &Mutex<u32>, tx: &Sender<u32>) {
    let g = mu.lock();
    drop(g);
    tx.send(1).unwrap();
}
fn scoped(mu: &Mutex<u32>, tx: &Sender<u32>) {
    {
        let g = mu.lock();
    }
    tx.send(2).unwrap();
}
"#;
    let diags = run(&[spec("fix/block-clean.rs", src)]);
    assert!(diags.is_empty(), "got: {diags:?}");
}

#[test]
fn blocking_under_lock_allow_suppresses_and_is_consumed() {
    let src = r#"
fn pump(mu: &Mutex<u32>, tx: &Sender<u32>) {
    let g = mu.lock();
    // specsync-allow(blocking-under-lock): fixture — bounded channel, sanctioned stall
    tx.send(1).unwrap();
}
"#;
    let diags = run(&[spec("fix/block-allowed.rs", src)]);
    assert!(
        diags.is_empty(),
        "allow must suppress cleanly, got: {diags:?}"
    );
}

// ---------------------------------------------------------------------------
// Pass 3: event-exhaustiveness
// ---------------------------------------------------------------------------

const EVENT_ENUM_FIXTURE: &str = r#"
pub enum Event {
    Push { worker: u64 },
    Pull { worker: u64 },
    Notify { worker: u64 },
}
"#;

#[test]
fn sink_record_missing_a_variant_is_caught() {
    let sink = r#"
struct CountingSink;
impl EventSink for CountingSink {
    fn record(&self, event: &Event) {
        match event {
            Event::Push { .. } => {}
            Event::Pull { .. } => {}
            Event::Notify { .. } => {}
        }
    }
}
struct PartialSink;
impl EventSink for PartialSink {
    fn record(&self, ev: &Event) {
        match ev {
            Event::Push { .. } => {}
            Event::Pull { .. } => {}
        }
    }
}
"#;
    let diags = run(&[
        spec("fix/event.rs", EVENT_ENUM_FIXTURE),
        spec("fix/sinks.rs", sink),
    ]);
    let hits = only_lint(&diags, Lint::EventExhaustiveness);
    assert_eq!(hits.len(), 1, "got: {diags:?}");
    assert_eq!(hits[0].line, line_of(sink, "fn record(&self, ev:"));
    assert!(
        hits[0].message.contains("2/3") && hits[0].message.contains("`Notify`"),
        "got: {}",
        hits[0].message
    );
}

#[test]
fn sink_record_covering_all_variants_through_a_helper_is_clean() {
    let sink = r#"
struct Sink;
fn encode(event: &Event) {
    match event {
        Event::Push { .. } => {}
        Event::Pull { .. } => {}
        Event::Notify { .. } => {}
    }
}
impl EventSink for Sink {
    fn record(&self, event: &Event) {
        encode(event);
    }
}
"#;
    let diags = run(&[
        spec("fix/event.rs", EVENT_ENUM_FIXTURE),
        spec("fix/sink-helper.rs", sink),
    ]);
    assert!(diags.is_empty(), "got: {diags:?}");
}

#[test]
fn sink_record_allow_marks_variant_agnostic_sinks_clean() {
    let sink = r#"
struct DropSink;
impl EventSink for DropSink {
    // specsync-allow(event-exhaustiveness): fixture — drops every event by contract
    fn record(&self, _event: &Event) {}
}
"#;
    let diags = run(&[
        spec("fix/event.rs", EVENT_ENUM_FIXTURE),
        spec("fix/null-sink.rs", sink),
    ]);
    assert!(
        diags.is_empty(),
        "allow must suppress cleanly, got: {diags:?}"
    );
}

#[test]
fn transport_send_missing_a_wire_variant_is_caught() {
    let wire = r#"
pub enum WireMessage {
    Pull { worker: u64 },
    Push { worker: u64 },
    Shutdown,
}
"#;
    let transport = r#"
struct InProc;
impl Transport for InProc {
    fn send(&mut self, msg: WireMessage) {
        match msg {
            WireMessage::Pull { .. } => {}
            WireMessage::Push { .. } => {}
            WireMessage::Shutdown => {}
        }
    }
}
struct Tcp;
impl Transport for Tcp {
    fn send(&mut self, msg: WireMessage) {
        match msg {
            WireMessage::Pull { .. } => {}
            WireMessage::Push { .. } => {}
        }
    }
}
"#;
    let diags = run(&[
        spec("fix/wire.rs", wire),
        spec("fix/transports.rs", transport),
    ]);
    let hits = only_lint(&diags, Lint::EventExhaustiveness);
    assert_eq!(hits.len(), 1, "got: {diags:?}");
    assert!(
        hits[0].message.contains("2/3")
            && hits[0].message.contains("WireMessage")
            && hits[0].message.contains("`Shutdown`"),
        "got: {}",
        hits[0].message
    );
}

#[test]
fn transport_wildcard_arm_dropping_wire_variants_is_caught() {
    let wire = r#"
pub enum WireMessage {
    Pull { worker: u64 },
    Push { worker: u64 },
    Shutdown,
}
"#;
    let transport = r#"
struct Lossy;
impl Transport for Lossy {
    fn send(&mut self, msg: WireMessage) {
        match msg {
            WireMessage::Pull { .. } => {}
            WireMessage::Push { .. } => {}
            WireMessage::Shutdown => {}
        }
        match msg {
            WireMessage::Pull { .. } => {}
            WireMessage::Push { .. } => {}
            _ => {}
        }
    }
}
"#;
    let diags = run(&[
        spec("fix/wire.rs", wire),
        spec("fix/lossy-transport.rs", transport),
    ]);
    let hits = only_lint(&diags, Lint::EventExhaustiveness);
    assert_eq!(hits.len(), 1, "got: {diags:?}");
    assert_eq!(hits[0].line, line_of(transport, "_ =>"));
    assert!(
        hits[0].message.contains("silently drops")
            && hits[0].message.contains("WireMessage")
            && hits[0].message.contains("`Shutdown`"),
        "got: {}",
        hits[0].message
    );
}

#[test]
fn wildcard_arm_dropping_variants_in_the_summarizer_is_caught() {
    let summarizer = r#"
fn summarize(event: &Event) {
    match event {
        Event::Push { .. } => {}
        Event::Pull { .. } => {}
        _ => {}
    }
}
"#;
    let diags = run(&[
        spec("fix/event.rs", EVENT_ENUM_FIXTURE),
        event_only_spec("fix/trace.rs", summarizer),
    ]);
    let hits = only_lint(&diags, Lint::EventExhaustiveness);
    assert_eq!(hits.len(), 1, "got: {diags:?}");
    assert_eq!(hits[0].line, line_of(summarizer, "_ =>"));
    assert!(
        hits[0].message.contains("silently drops") && hits[0].message.contains("`Notify`"),
        "got: {}",
        hits[0].message
    );
}

#[test]
fn wildcard_arm_with_all_variants_named_is_clean() {
    let summarizer = r#"
fn summarize(event: &Event) {
    match event {
        Event::Push { .. } => {}
        Event::Pull { .. } => {}
        Event::Notify { .. } => {}
        _ => {}
    }
}
"#;
    let diags = run(&[
        spec("fix/event.rs", EVENT_ENUM_FIXTURE),
        event_only_spec("fix/trace.rs", summarizer),
    ]);
    assert!(diags.is_empty(), "got: {diags:?}");
}

#[test]
fn wildcard_arm_allow_suppresses_and_is_consumed() {
    let summarizer = r#"
fn summarize(event: &Event) {
    match event {
        Event::Push { .. } => {}
        Event::Pull { .. } => {}
        // specsync-allow(event-exhaustiveness): fixture — only the push/pull pair matters here
        _ => {}
    }
}
"#;
    let diags = run(&[
        spec("fix/event.rs", EVENT_ENUM_FIXTURE),
        event_only_spec("fix/trace.rs", summarizer),
    ]);
    assert!(
        diags.is_empty(),
        "allow must suppress cleanly, got: {diags:?}"
    );
}

#[test]
fn event_only_files_skip_the_lock_passes() {
    // The summarizer is a harness binary: blocking and locking are its
    // job. It joins the model for event-exhaustiveness only.
    let summarizer = r#"
fn pump(mu: &Mutex<u32>, tx: &Sender<u32>) {
    let g = mu.lock();
    tx.send(1).unwrap();
}
"#;
    let diags = run(&[event_only_spec("fix/trace.rs", summarizer)]);
    assert!(diags.is_empty(), "got: {diags:?}");
}

#[test]
fn dead_error_variant_is_caught_at_its_declaration() {
    let src = r#"
pub enum SpecSyncError {
    Stale { version: u64 },
    Orphaned,
}
impl SpecSyncError {
    fn fmt(&self) {
        match self {
            SpecSyncError::Stale { .. } => {}
            SpecSyncError::Orphaned => {}
        }
    }
}
fn raise() -> SpecSyncError {
    SpecSyncError::Stale { version: 1 }
}
"#;
    let diags = run(&[spec("fix/error.rs", src)]);
    let hits = only_lint(&diags, Lint::EventExhaustiveness);
    assert_eq!(hits.len(), 1, "got: {diags:?}");
    assert_eq!(hits[0].line, line_of(src, "Orphaned,"));
    assert!(
        hits[0].message.contains("dead variant")
            && hits[0].message.contains("SpecSyncError::Orphaned"),
        "got: {}",
        hits[0].message
    );
}

#[test]
fn error_variant_referenced_in_another_file_is_live() {
    let def = r#"
pub enum SpecSyncError {
    Stale { version: u64 },
    Orphaned,
}
"#;
    let user = r#"
fn raise(orphan: bool) -> SpecSyncError {
    if orphan {
        SpecSyncError::Orphaned
    } else {
        SpecSyncError::Stale { version: 1 }
    }
}
"#;
    let diags = run(&[spec("fix/error.rs", def), spec("fix/user.rs", user)]);
    assert!(diags.is_empty(), "got: {diags:?}");
}

#[test]
fn dead_variant_allow_suppresses_and_is_consumed() {
    let src = r#"
pub enum SpecSyncError {
    Stale { version: u64 },
    // specsync-allow(event-exhaustiveness): fixture — reserved for the next protocol rev
    Orphaned,
}
fn raise() -> SpecSyncError {
    SpecSyncError::Stale { version: 1 }
}
"#;
    let diags = run(&[spec("fix/error.rs", src)]);
    assert!(
        diags.is_empty(),
        "allow must suppress cleanly, got: {diags:?}"
    );
}

#[test]
fn test_region_violations_are_exempt() {
    let src = r#"
struct T { m: Mutex<u32> }
#[cfg(test)]
mod tests {
    #[test]
    fn stress() {
        let t = T { m: Mutex::new(0) };
        let g1 = t.m.lock();
        let g2 = t.m.lock();
    }
}
"#;
    let diags = run(&[spec("fix/testonly.rs", src)]);
    assert!(diags.is_empty(), "got: {diags:?}");
}

#[test]
fn partial_pass_runs_do_not_call_the_other_stages_allows_stale() {
    let src = r#"
fn pump(mu: &Mutex<u32>, tx: &Sender<u32>) {
    let g = mu.lock();
    // specsync-allow(blocking-under-lock): fixture — sanctioned stall
    tx.send(1).unwrap();
}
"#;
    // Scanner-only: the semantic pass never ran, so its allow cannot be
    // judged stale (and the violation it covers is not reported either).
    let diags = analyze_sources(
        &[spec("fix/block-allowed.rs", src)],
        Options::default(),
        Passes::Scanner,
    );
    assert!(
        !diags.iter().any(|d| d.lint == Lint::UnusedAllow),
        "scanner-only run must not flag semantic allows, got: {diags:?}"
    );
}

// ---------------------------------------------------------------------------
// Satellite: perf + determinism smoke over the real workspace
// ---------------------------------------------------------------------------

#[test]
fn real_workspace_analysis_is_fast_and_deterministic() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");

    let render = |a: &xtask::Analysis| -> String {
        a.diagnostics
            .iter()
            .map(xtask::json::to_json_line)
            .collect::<Vec<_>>()
            .join("\n")
    };

    let start = Instant::now();
    let first = xtask::analyze_workspace(root, Options::default(), Passes::All)
        .expect("workspace readable");
    let second = xtask::analyze_workspace(root, Options::default(), Passes::All)
        .expect("workspace readable");
    let elapsed = start.elapsed();

    assert!(first.files_scanned > 40, "suspiciously few files scanned");
    assert_eq!(first.files_scanned, second.files_scanned);
    assert_eq!(
        render(&first),
        render(&second),
        "two runs over identical sources must render byte-identical diagnostics"
    );
    // Both full-pipeline runs together stay well under a minute even on a
    // cold debug build; a regression past this bound means the fixpoint
    // or the parser went super-linear.
    assert!(
        elapsed.as_secs() < 60,
        "two full analyses took {elapsed:?} — semantic pass perf regression"
    );
}
