//! High-level training API: the one-call entry point used by examples and
//! experiment binaries.

use std::sync::Arc;

use specsync_core::SpecSyncError;
use specsync_ml::Workload;
use specsync_simnet::{FaultPlan, VirtualTime};
use specsync_sync::SchemeKind;
use specsync_telemetry::{EventSink, NullSink};

use crate::driver::{Driver, DriverConfig};
use crate::report::RunReport;
use crate::spec::ClusterSpec;

/// Builder-style front end over [`Driver`].
///
/// # Examples
///
/// ```
/// use specsync_cluster::{ClusterSpec, InstanceType, Trainer};
/// use specsync_ml::Workload;
/// use specsync_sync::SchemeKind;
///
/// let report = Trainer::new(Workload::tiny_test(), SchemeKind::Asp)
///     .cluster(ClusterSpec::homogeneous(3, InstanceType::M4Xlarge))
///     .seed(7)
///     .run();
/// assert_eq!(report.num_workers, 3);
/// ```
#[derive(Debug, Clone)]
pub struct Trainer {
    workload: Workload,
    scheme: SchemeKind,
    cluster: ClusterSpec,
    config: DriverConfig,
    seed: u64,
    sink: Arc<dyn EventSink<VirtualTime>>,
    faults: Option<FaultPlan>,
}

impl Trainer {
    /// Creates a trainer for the given workload and scheme with the paper's
    /// default cluster (40 × m4.xlarge) and driver defaults.
    pub fn new(workload: Workload, scheme: SchemeKind) -> Self {
        Trainer {
            workload,
            scheme,
            cluster: ClusterSpec::paper_cluster1(),
            config: DriverConfig::default(),
            seed: 0,
            sink: Arc::new(NullSink),
            faults: None,
        }
    }

    /// Routes the run's protocol events to `sink` (see
    /// [`Driver::with_sink`]).
    pub fn sink(mut self, sink: Arc<dyn EventSink<VirtualTime>>) -> Self {
        self.sink = sink;
        self
    }

    /// Sets the cluster.
    pub fn cluster(mut self, cluster: ClusterSpec) -> Self {
        self.cluster = cluster;
        self
    }

    /// Injects a chaos schedule for the run (see [`Driver::with_faults`]).
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the virtual-time horizon.
    pub fn horizon(mut self, max_virtual_time: VirtualTime) -> Self {
        self.config.max_virtual_time = max_virtual_time;
        self
    }

    /// Keeps training after convergence until the horizon (for fixed-budget
    /// experiments such as Fig. 11's right plot).
    pub fn run_to_horizon(mut self) -> Self {
        self.config.stop_on_convergence = false;
        self
    }

    /// Evaluates loss only every `stride`-th push (cheaper long runs).
    ///
    /// # Panics
    ///
    /// Panics if `stride == 0`.
    pub fn eval_stride(mut self, stride: u64) -> Self {
        assert!(stride > 0, "stride must be positive");
        self.config.eval_stride = stride;
        self
    }

    /// Overrides the full driver configuration.
    pub fn config(mut self, config: DriverConfig) -> Self {
        self.config = config;
        self
    }

    /// Bounds the scheduler's push history to the last `epochs` closed
    /// epochs (clamped up to the tuner's window, so scheduling decisions
    /// are unchanged). The default keeps the full history.
    pub fn history_retention(mut self, epochs: usize) -> Self {
        self.config.history_retention = Some(epochs);
        self
    }

    /// Runs the experiment and returns its report.
    ///
    /// # Panics
    ///
    /// Panics on an internal wiring bug; [`try_run`](Self::try_run)
    /// surfaces those as [`SpecSyncError`] instead.
    pub fn run(self) -> RunReport {
        match self.try_run() {
            Ok(report) => report,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`run`](Self::run) with internal invariant violations reported as
    /// typed errors instead of panics.
    pub fn try_run(self) -> Result<RunReport, SpecSyncError> {
        let mut driver = Driver::new(
            self.workload,
            self.scheme,
            self.cluster,
            self.config,
            self.seed,
        )
        .with_sink(self.sink);
        if let Some(plan) = self.faults {
            driver = driver.with_faults(plan);
        }
        driver.try_run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceType;

    #[test]
    fn builder_round_trips_settings() {
        let t = Trainer::new(Workload::tiny_test(), SchemeKind::Asp)
            .cluster(ClusterSpec::homogeneous(2, InstanceType::M3Xlarge))
            .seed(9)
            .horizon(VirtualTime::from_secs(50))
            .eval_stride(2);
        let report = t.run();
        assert_eq!(report.num_workers, 2);
        assert_eq!(report.seed, 9);
        assert!(report.finished_at <= VirtualTime::from_secs(51));
    }

    #[test]
    fn run_to_horizon_does_not_stop_early() {
        let report = Trainer::new(Workload::tiny_test(), SchemeKind::Asp)
            .cluster(ClusterSpec::homogeneous(3, InstanceType::M4Xlarge))
            .horizon(VirtualTime::from_secs(120))
            .run_to_horizon()
            .seed(4)
            .run();
        // Even after convergence the run continues to the horizon.
        if let Some(c) = report.converged_at {
            assert!(report.finished_at > c);
        }
    }
}
