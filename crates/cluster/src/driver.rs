//! The virtual-time training driver.
//!
//! Composes the parameter store, the SpecSync scheduler, the sync-scheme
//! bookkeeping and the per-worker models into one discrete-event loop.
//! Gradient math is real (each worker computes actual minibatch gradients
//! against its possibly-stale replica); *time* is virtual: compute spans are
//! drawn from instance-type distributions and message delays from the
//! network model, so a 40-node hour-long EC2 run replays in milliseconds,
//! deterministically from a seed.
//!
//! Worker lifecycle (paper Algorithm 2, worker side):
//!
//! ```text
//! pull issued ──(pull bytes)──▶ PullArrive: compute gradient, start timer
//!    ▲                              │
//!    │ re-sync while computing      ▼
//!    └───────── ResyncArrive    ComputeDone ──(push bytes)──▶ PushArrive:
//!                                   apply to store, notify scheduler,
//!                                   next pull (gated by BSP/SSP/naïve wait)
//! ```
//!
//! # Fault injection
//!
//! An optional [`FaultPlan`] (see [`Driver::with_faults`]) subjects every
//! message send to drop/duplicate/delay-spike verdicts, slows compute
//! inside straggler windows, and schedules worker crash/recover events.
//! The degradation machinery is:
//!
//! - **Retries**: dropped pulls and pushes are re-sent after a fixed
//!   timeout, up to [`DriverConfig::max_send_retries`] times; the final
//!   attempt is delivered cleanly so a hostile plan cannot livelock the
//!   run. Dropped notifies are *not* retried — the scheduler reconciles
//!   its notify count against the store's applied-push counter
//!   (piggybacked on the next notify) and backfills the gap.
//! - **Fencing**: each worker carries a crash epoch; pushes from before a
//!   crash arrive with a stale epoch and are fenced off instead of
//!   corrupting the store. Duplicated pushes are deduplicated by sequence
//!   number, duplicated notifies/re-syncs by monotone counters.
//! - **Membership**: a crash deactivates the worker in the scheduler
//!   (shrinking the effective `m` the Eq. 6/7 tuner sees) and in the
//!   BSP/SSP gates, releasing anyone waiting on the dead worker so no
//!   scheme deadlocks; recovery reverses all of it in a fresh epoch.
//! - **Abort acks**: a `re-sync` delivery acknowledges the abort; if the
//!   ack does not arrive before [`DriverConfig::abort_ack_timeout`], the
//!   abort is re-issued at most once.
//!
//! A driver without a fault plan draws zero randomness from the fault
//! stream and schedules no chaos events, so fault-free runs are
//! byte-identical to the pre-fault behaviour.

use std::sync::Arc;

use rand::rngs::StdRng;

use specsync_core::{Scheduler, SpecSyncError};
use specsync_ml::{BatchSampler, LrSchedule, Model, SparseGrad, Workload};
use specsync_net::{FailoverControl, MessageSizes, ShardHost};
use specsync_ps::{ParameterStore, ReplicaError, ReplicatedStore};
use specsync_simnet::{
    DurationSampler, EventQueue, FaultPlan, MessageClass, MessageFate, NetworkModel, RngStreams,
    SimDuration, TransferLedger, VirtualTime, WorkerId,
};
use specsync_sync::{BaseScheme, BspBarrier, SchemeKind, SspClock, TuningMode};
use specsync_telemetry::{
    Event as TraceEvent, EventSink, FaultKind, LossCurve, NullSink, WorkerPhase,
};

use crate::report::{ChaosStats, LossPoint, RunReport};
use crate::spec::ClusterSpec;

/// Driver tunables beyond workload/scheme/cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriverConfig {
    /// Hard horizon on virtual time; the run stops here if not converged.
    pub max_virtual_time: VirtualTime,
    /// Safety cap on total pushes.
    pub max_iterations: u64,
    /// Number of server shards for the parameter store.
    pub num_shards: usize,
    /// Evaluate the global loss every `eval_stride`-th push (1 = every push).
    pub eval_stride: u64,
    /// Stop as soon as the convergence criterion is met.
    pub stop_on_convergence: bool,
    /// How long to wait before re-sending a dropped pull/push.
    pub retry_timeout: SimDuration,
    /// Retry budget per message; the attempt after the last retry is
    /// delivered cleanly (a fault plan must degrade the run, not wedge it).
    pub max_send_retries: u32,
    /// How long the scheduler waits for a `re-sync` delivery ack before
    /// re-issuing the abort (at most once per armed window).
    pub abort_ack_timeout: SimDuration,
    /// How long after a server-shard crash the warm backup is promoted to
    /// serving. Pulls and pushes arriving inside this window park on
    /// [`retry_timeout`](Self::retry_timeout) and succeed after promotion.
    pub failover_delay: SimDuration,
    /// Bound the scheduler's push history to the last `r` closed epochs
    /// (clamped up to the tuner's window so decisions never change).
    /// `None` keeps the full history — byte-identical to the unbounded
    /// seed behavior.
    pub history_retention: Option<usize>,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            max_virtual_time: VirtualTime::from_secs(200_000),
            max_iterations: 2_000_000,
            num_shards: 8,
            eval_stride: 1,
            stop_on_convergence: true,
            retry_timeout: SimDuration::from_millis(50),
            max_send_retries: 10,
            abort_ack_timeout: SimDuration::from_millis(200),
            failover_delay: SimDuration::from_millis(75),
            history_retention: None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// Pull bytes delivered (tagged with the worker's crash epoch at send).
    PullArrive(WorkerId, u64),
    /// Re-send a dropped pull: (worker, epoch, attempt).
    PullRetry(WorkerId, u64, u32),
    ComputeDone(WorkerId, u64),
    /// Re-send a dropped push: (worker, epoch, seq, attempt).
    PushSend(WorkerId, u64, u64, u32),
    /// Push bytes delivered: (worker, epoch, seq).
    PushArrive(WorkerId, u64, u64),
    /// Notify delivered, piggybacking the store's applied-push counter for
    /// the sender (captured at push-apply time).
    NotifyArrive(WorkerId, u64),
    CheckTimer(WorkerId),
    /// Re-sync delivered: (worker, issue id) — duplicates deduplicated.
    ResyncArrive(WorkerId, u64),
    /// The abort issued at the carried instant was never acknowledged.
    AbortAckTimeout(WorkerId, VirtualTime),
    NaiveWaitDone(WorkerId),
    WorkerCrash(WorkerId),
    WorkerRecover(WorkerId),
    /// A pull request parked while a server shard was down retries
    /// (worker, epoch). Not a message retry — no attempt budget.
    PullBlocked(WorkerId, u64),
    /// A parameter-server shard's primary crashes; traffic is refused
    /// until the backup is promoted.
    ServerCrash(usize),
    /// The crashed shard's warm backup is promoted after the failover
    /// delay: journal replay, then traffic resumes.
    ServerPromote(usize),
    /// The crashed node rejoins as the shard's fresh warm backup.
    ServerRecover(usize),
    /// A straggler window (by index into the plan) opens — telemetry only;
    /// the slowdown itself is sampled per compute start.
    StragglerStart(usize),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WorkerState {
    /// Waiting for a barrier/SSP gate or naïve-wait delay before pulling.
    Idle,
    /// Pull in flight.
    Pulling,
    /// Gradient computation in progress (abortable).
    Computing,
    /// Push in flight.
    Pushing,
    /// Crashed; ignores every event until a `WorkerRecover`.
    Dead,
}

impl WorkerState {
    /// The telemetry phase mirroring this driver state.
    fn phase(self) -> WorkerPhase {
        match self {
            WorkerState::Idle => WorkerPhase::Idle,
            WorkerState::Pulling => WorkerPhase::Pulling,
            WorkerState::Computing => WorkerPhase::Computing,
            WorkerState::Pushing => WorkerPhase::Pushing,
            WorkerState::Dead => WorkerPhase::Dead,
        }
    }
}

struct WorkerCtx {
    state: WorkerState,
    attempt: u64,
    model: Box<dyn Model>,
    sampler: BatchSampler,
    /// Dense gradient buffer (fallback for models without a sparse path).
    grad: Vec<f32>,
    /// Reusable sparse gradient accumulator.
    sparse_grad: SparseGrad,
    /// Whether the last computed gradient lives in `sparse_grad`.
    grad_is_sparse: bool,
    /// Replica delivered by the last pull, shared with the store's
    /// snapshot cache (and with every other worker that pulled the same
    /// version) instead of owning a copy.
    pending_params: Option<Arc<[f32]>>,
    iterations: u64,
    aborts: u64,
    compute_started: VirtualTime,
    compute_sampler: DurationSampler,
    rng: StdRng,
    /// Crash epoch: bumped on every recovery. Messages sent before the
    /// crash carry the old epoch and are fenced on delivery.
    epoch: u64,
    /// Sequence number of the last push sent (for duplicate detection).
    push_seq: u64,
    /// Sequence number of the last push applied to the store.
    applied_seq: u64,
    /// Highest applied-push count seen in a delivered notify (dedupes
    /// duplicated and reordered notifies).
    notify_seen: u64,
    /// Issue counter for re-sync messages sent to this worker.
    resync_issued: u64,
    /// Highest re-sync issue id delivered (dedupes duplicated re-syncs).
    resync_seen: u64,
}

/// Runs one training experiment to convergence (or the horizon) and
/// produces a [`RunReport`].
pub struct Driver {
    workload: Workload,
    scheme: SchemeKind,
    cluster: ClusterSpec,
    config: DriverConfig,
    seed: u64,
    sink: Arc<dyn EventSink<VirtualTime>>,
    faults: Option<FaultPlan>,
}

impl std::fmt::Debug for Driver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Driver")
            .field("workload", &self.workload.paper.name)
            .field("scheme", &self.scheme.label())
            .field("workers", &self.cluster.num_workers())
            .field("faults", &self.faults.is_some())
            .finish()
    }
}

impl Driver {
    /// Creates a driver for (workload × scheme × cluster).
    pub fn new(
        workload: Workload,
        scheme: SchemeKind,
        cluster: ClusterSpec,
        config: DriverConfig,
        seed: u64,
    ) -> Self {
        Driver {
            workload,
            scheme,
            cluster,
            config,
            seed,
            sink: Arc::new(NullSink),
            faults: None,
        }
    }

    /// Routes every protocol event of the run (pulls, pushes, notifies,
    /// abort decisions, re-syncs, tuning passes, evaluations, worker state
    /// transitions) to `sink`, stamped with virtual time. Emission points
    /// are deterministic, so with a deterministic sink two same-seed runs
    /// produce identical event streams.
    pub fn with_sink(mut self, sink: Arc<dyn EventSink<VirtualTime>>) -> Self {
        self.sink = sink;
        self
    }

    /// Injects a chaos schedule: every message send is subjected to the
    /// plan's drop/duplicate/delay verdicts, compute slows inside its
    /// straggler windows, and its crash/recover timeline is replayed.
    ///
    /// The plan carries its own RNG stream, so `(seed, plan)` pairs replay
    /// byte-identically; without a plan the fault machinery is fully
    /// dormant (zero extra randomness, zero extra events).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Runs the experiment.
    ///
    /// # Panics
    ///
    /// Panics on an internal wiring bug (scheme state missing, pull lost);
    /// [`try_run`](Self::try_run) surfaces those as [`SpecSyncError`]
    /// instead.
    pub fn run(self) -> RunReport {
        match self.try_run() {
            Ok(report) => report,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`run`](Self::run), but internal invariant violations become typed
    /// errors instead of panics — for embedding hosts that must not abort.
    pub fn try_run(self) -> Result<RunReport, SpecSyncError> {
        Simulation::new(self).run()
    }
}

/// Maps a replication-layer refusal into the workspace error type. Only
/// reachable through a wiring bug: every store access is guarded by an
/// availability check that parks the request instead.
fn replica_to_error(e: ReplicaError) -> SpecSyncError {
    let server = match e {
        ReplicaError::UnknownServer(s) | ReplicaError::ServerDown(s) => s,
        ReplicaError::WrongState { server, .. } => server,
    };
    SpecSyncError::ServerUnavailable { server }
}

/// The mutable simulation state (separate from `Driver` so `run` can
/// consume the config cleanly).
struct Simulation {
    workload: Workload,
    scheme: SchemeKind,
    cluster: ClusterSpec,
    config: DriverConfig,
    seed: u64,

    queue: EventQueue<Event>,
    net: NetworkModel,
    net_rng: StdRng,
    sizes: MessageSizes,
    ledger: TransferLedger,

    host: ShardHost,
    scheduler: Scheduler,
    workers: Vec<WorkerCtx>,
    eval: specsync_ml::EvalSet,
    detector: specsync_ml::ConvergenceDetector,
    lr: LrSchedule,

    bsp: Option<BspBarrier>,
    ssp: Option<SspClock>,
    ssp_blocked: Vec<WorkerId>,

    sink: Arc<dyn EventSink<VirtualTime>>,
    faults: Option<FaultPlan>,
    chaos: ChaosStats,

    total_pushes: u64,
    epochs_done: u64,
    loss_curve: LossCurve<VirtualTime>,
    converged_at: Option<VirtualTime>,
    iterations_at_convergence: Option<u64>,
    wasted_compute: SimDuration,
    staleness_sum: f64,
    staleness_count: u64,
    hyper_trace: Vec<(u64, specsync_core::Hyperparams)>,
}

impl Simulation {
    fn new(driver: Driver) -> Self {
        let Driver {
            workload,
            scheme,
            cluster,
            config,
            seed,
            sink,
            faults,
        } = driver;
        let m = cluster.num_workers();
        let streams = RngStreams::new(seed);
        let bundle = workload.build(m, seed);

        let initial = bundle.workers[0].params().to_vec();
        let mut store =
            ParameterStore::new(initial, config.num_shards).with_momentum(workload.momentum);
        if let Some(clip) = workload.grad_clip {
            store = store.with_grad_clip(clip);
        }
        // Primary/backup replication with a bounded write-ahead journal;
        // a fault-free run never crashes a shard, so the wrapper is pure
        // bookkeeping (zero extra RNG, zero extra events).
        let store = ReplicatedStore::from_store(store, ReplicatedStore::DEFAULT_JOURNAL_CAPACITY);
        let sizes = MessageSizes::for_model(workload.paper.num_parameters);

        let tuning = match scheme {
            SchemeKind::SpecSync { tuning, .. } => tuning,
            // Non-speculative schemes still use the scheduler as the
            // history recorder, with speculation disabled.
            _ => TuningMode::Fixed {
                abort_time: SimDuration::ZERO,
                abort_rate: f64::MAX,
            },
        };
        // The scheduler emits its own decisions (notify, abort-issued,
        // epoch-tuned) through the same sink as the driver's data-plane
        // events, so a trace interleaves both sides of the protocol.
        let mut scheduler = Scheduler::new(m, tuning).with_sink(Arc::clone(&sink));
        if let Some(epochs) = config.history_retention {
            scheduler = scheduler.with_history_retention(epochs);
        }

        let workers = bundle
            .workers
            .into_iter()
            .enumerate()
            .map(|(i, model)| {
                let n = model.num_params();
                let sampler: BatchSampler = workload.sampler_for(model.as_ref(), i, seed ^ 0xBA7C);
                WorkerCtx {
                    state: WorkerState::Idle,
                    attempt: 0,
                    model,
                    sampler,
                    grad: vec![0.0; n],
                    sparse_grad: SparseGrad::new(),
                    grad_is_sparse: false,
                    pending_params: None,
                    iterations: 0,
                    aborts: 0,
                    compute_started: VirtualTime::ZERO,
                    compute_sampler: cluster
                        .instance(i)
                        .iteration_sampler(workload.mean_iteration_secs, workload.iteration_cv),
                    rng: streams.indexed_stream("compute", i),
                    epoch: 0,
                    push_seq: 0,
                    applied_seq: 0,
                    notify_seen: 0,
                    resync_issued: 0,
                    resync_seen: 0,
                }
            })
            .collect();

        let (bsp, ssp) = match scheme {
            SchemeKind::Bsp => (Some(BspBarrier::new(m)), None),
            SchemeKind::Ssp { bound } => (None, Some(SspClock::new(m, bound))),
            SchemeKind::SpecSync {
                base: BaseScheme::Ssp { bound },
                ..
            } => (None, Some(SspClock::new(m, bound))),
            _ => (None, None),
        };

        Simulation {
            lr: workload.lr.clone(),
            detector: workload.convergence_detector(),
            net: cluster.network(),
            net_rng: streams.stream("net"),
            sizes,
            ledger: TransferLedger::new(),
            queue: EventQueue::new(),
            host: ShardHost::new(store),
            scheduler,
            workers,
            eval: bundle.eval,
            bsp,
            ssp,
            ssp_blocked: Vec::new(),
            sink,
            faults,
            chaos: ChaosStats::default(),
            total_pushes: 0,
            epochs_done: 0,
            loss_curve: LossCurve::new(),
            converged_at: None,
            iterations_at_convergence: None,
            wasted_compute: SimDuration::ZERO,
            staleness_sum: 0.0,
            staleness_count: 0,
            hyper_trace: Vec::new(),
            workload,
            scheme,
            cluster,
            config,
            seed,
        }
    }

    fn delay(&mut self, class: MessageClass) -> SimDuration {
        let bytes = self.sizes.bytes_for(class);
        self.net.delay(bytes, &mut self.net_rng)
    }

    fn record_transfer(&mut self, at: VirtualTime, class: MessageClass) {
        let bytes = self.sizes.bytes_for(class);
        self.ledger.record(at, class, bytes);
    }

    /// Draws the fault plan's verdict for one message send by `worker`,
    /// emitting [`TraceEvent::Fault`] telemetry and chaos counters.
    /// Without a plan this is a clean delivery and zero RNG draws.
    fn fate_for(
        &mut self,
        worker: WorkerId,
        class: MessageClass,
        now: VirtualTime,
    ) -> Result<MessageFate, SpecSyncError> {
        let Some(plan) = self.faults.as_mut() else {
            return Ok(MessageFate::clean());
        };
        let fate = plan.try_fate(class)?;
        if fate.is_drop() {
            self.chaos.dropped_messages += 1;
            self.sink.record(
                now,
                &TraceEvent::Fault {
                    worker,
                    class,
                    kind: FaultKind::Drop,
                },
            );
        } else {
            if fate.is_duplicate() {
                self.chaos.duplicated_messages += 1;
                self.sink.record(
                    now,
                    &TraceEvent::Fault {
                        worker,
                        class,
                        kind: FaultKind::Duplicate,
                    },
                );
            }
            if fate.is_spiked() {
                self.chaos.delay_spikes += 1;
                self.sink.record(
                    now,
                    &TraceEvent::Fault {
                        worker,
                        class,
                        kind: FaultKind::DelaySpike(fate.extra_delay),
                    },
                );
            }
        }
        Ok(fate)
    }

    /// Transitions `worker` to `state`, reporting the transition to the
    /// event sink.
    fn set_worker_state(&mut self, worker: WorkerId, state: WorkerState, now: VirtualTime) {
        self.workers[worker.index()].state = state;
        self.sink.record(
            now,
            &TraceEvent::WorkerState {
                worker,
                state: state.phase(),
            },
        );
    }

    /// Issues a pull for `worker` at `now`: snapshot immediately (server
    /// state at request time), deliver after the transfer delay. Dead
    /// workers are silently skipped (a crash can race a release decision).
    fn issue_pull(&mut self, worker: WorkerId, now: VirtualTime) -> Result<(), SpecSyncError> {
        if self.workers[worker.index()].state == WorkerState::Dead {
            return Ok(());
        }
        self.request_pull(worker, now)
    }

    /// Serves the pull request against the replicated store. While a
    /// server shard is down awaiting promotion the request parks on the
    /// retry timer instead — server unavailability is not message loss,
    /// so no retry budget is spent; promotion bounds the wait.
    fn request_pull(&mut self, worker: WorkerId, now: VirtualTime) -> Result<(), SpecSyncError> {
        if !self.host.is_available() {
            self.chaos.blocked_on_failover += 1;
            let epoch = self.workers[worker.index()].epoch;
            self.set_worker_state(worker, WorkerState::Pulling, now);
            self.queue.schedule(
                now + self.config.retry_timeout,
                Event::PullBlocked(worker, epoch),
            );
            return Ok(());
        }
        // The host observes staleness before registering the pull — the
        // same store-call order this code had before the verb extraction.
        let grant = self.host.pull(worker).map_err(replica_to_error)?;
        let staleness = grant.staleness;
        self.staleness_sum += staleness as f64;
        self.staleness_count += 1;
        self.sink
            .record(now, &TraceEvent::Pull { worker, staleness });
        self.scheduler.on_pull(worker, now);
        self.workers[worker.index()].pending_params = Some(grant.snapshot.into_shared());
        self.set_worker_state(worker, WorkerState::Pulling, now);
        self.send_pull(worker, 0, now)
    }

    /// Puts the pull bytes on the wire (attempt `attempt`), honouring the
    /// fault plan: drops schedule a bounded retry, duplicates deliver
    /// twice, spikes delay every copy.
    fn send_pull(
        &mut self,
        worker: WorkerId,
        attempt: u32,
        now: VirtualTime,
    ) -> Result<(), SpecSyncError> {
        let epoch = self.workers[worker.index()].epoch;
        let fate = if attempt >= self.config.max_send_retries {
            MessageFate::clean() // retry budget exhausted: deliver, don't livelock
        } else {
            self.fate_for(worker, MessageClass::PullParams, now)?
        };
        if fate.is_drop() {
            self.chaos.retries += 1;
            self.sink.record(
                now,
                &TraceEvent::RetryScheduled {
                    worker,
                    class: MessageClass::PullParams,
                    attempt: attempt + 1,
                },
            );
            self.queue.schedule(
                now + self.config.retry_timeout,
                Event::PullRetry(worker, epoch, attempt + 1),
            );
            return Ok(());
        }
        for _ in 0..fate.copies {
            let delay = self.delay(MessageClass::PullParams) + fate.extra_delay;
            let at = now + delay;
            self.record_transfer(at, MessageClass::PullParams);
            self.queue.schedule(at, Event::PullArrive(worker, epoch));
        }
        Ok(())
    }

    /// Puts the push bytes on the wire (attempt `attempt`), same fault
    /// handling as [`send_pull`](Self::send_pull).
    fn send_push(
        &mut self,
        worker: WorkerId,
        seq: u64,
        attempt: u32,
        now: VirtualTime,
    ) -> Result<(), SpecSyncError> {
        let epoch = self.workers[worker.index()].epoch;
        let fate = if attempt >= self.config.max_send_retries {
            MessageFate::clean()
        } else {
            self.fate_for(worker, MessageClass::PushGrad, now)?
        };
        if fate.is_drop() {
            self.chaos.retries += 1;
            self.sink.record(
                now,
                &TraceEvent::RetryScheduled {
                    worker,
                    class: MessageClass::PushGrad,
                    attempt: attempt + 1,
                },
            );
            self.queue.schedule(
                now + self.config.retry_timeout,
                Event::PushSend(worker, epoch, seq, attempt + 1),
            );
            return Ok(());
        }
        for _ in 0..fate.copies {
            let delay = self.delay(MessageClass::PushGrad) + fate.extra_delay;
            self.queue
                .schedule(now + delay, Event::PushArrive(worker, epoch, seq));
        }
        Ok(())
    }

    /// Sends a `re-sync` instruction to `worker`; re-syncs are never
    /// retried on drop — the abort-ack timeout covers loss instead.
    fn send_resync(&mut self, worker: WorkerId, now: VirtualTime) -> Result<(), SpecSyncError> {
        self.workers[worker.index()].resync_issued += 1;
        let issue = self.workers[worker.index()].resync_issued;
        let fate = self.fate_for(worker, MessageClass::Resync, now)?;
        for _ in 0..fate.copies {
            let delay = self.delay(MessageClass::Resync) + fate.extra_delay;
            self.queue
                .schedule(now + delay, Event::ResyncArrive(worker, issue));
        }
        Ok(())
    }

    /// Scheme-specific gate between finishing a push and issuing the next
    /// pull. Errs if the scheme's state (barrier/clock) was never built —
    /// a wiring bug reported with context instead of a bare `expect`.
    fn after_push(&mut self, worker: WorkerId, now: VirtualTime) -> Result<(), SpecSyncError> {
        match self.scheme {
            SchemeKind::Asp
            | SchemeKind::SpecSync {
                base: BaseScheme::Asp,
                ..
            } => {
                self.issue_pull(worker, now)?;
            }
            SchemeKind::NaiveWaiting { delay } => {
                self.set_worker_state(worker, WorkerState::Idle, now);
                self.queue
                    .schedule(now + delay, Event::NaiveWaitDone(worker));
            }
            SchemeKind::Bsp => {
                self.set_worker_state(worker, WorkerState::Idle, now);
                let barrier = self.bsp.as_mut().ok_or(SpecSyncError::SchemeStateMissing {
                    what: "BSP barrier",
                })?;
                if let Some(released) = barrier.arrive(worker) {
                    for w in released {
                        self.issue_pull(w, now)?;
                    }
                }
            }
            SchemeKind::Ssp { .. }
            | SchemeKind::SpecSync {
                base: BaseScheme::Ssp { .. },
                ..
            } => {
                let ssp = self
                    .ssp
                    .as_mut()
                    .ok_or(SpecSyncError::SchemeStateMissing { what: "SSP clock" })?;
                ssp.complete_iteration(worker);
                // Release any worker the completion unblocked.
                let unblocked = ssp.newly_unblocked(&self.ssp_blocked);
                self.ssp_blocked.retain(|w| !unblocked.contains(w));
                let can_start = ssp.can_start_next(worker);
                for w in unblocked {
                    self.issue_pull(w, now)?;
                }
                if can_start {
                    self.issue_pull(worker, now)?;
                } else {
                    self.set_worker_state(worker, WorkerState::Idle, now);
                    self.ssp_blocked.push(worker);
                }
            }
        }
        Ok(())
    }

    fn start_compute(&mut self, worker: WorkerId, now: VirtualTime) -> Result<(), SpecSyncError> {
        let ctx = &mut self.workers[worker.index()];
        let params = ctx
            .pending_params
            .take()
            .ok_or(SpecSyncError::MissingPullParams {
                worker: worker.index(),
            })?;
        ctx.model.set_params(&params);
        drop(params); // release the shared snapshot before the long compute
        let batch = ctx.sampler.next_batch();
        ctx.grad_is_sparse = ctx.model.sparse_gradient(&batch, &mut ctx.sparse_grad);
        if !ctx.grad_is_sparse {
            ctx.model.gradient(&batch, &mut ctx.grad);
        }
        ctx.compute_started = now;
        ctx.attempt += 1;
        // Always sample first, then stretch: straggler windows must not
        // shift the compute RNG stream relative to a fault-free run.
        let mut duration = ctx.compute_sampler.sample(&mut ctx.rng);
        let attempt = ctx.attempt;
        if let Some(plan) = &self.faults {
            let slowdown = plan.slowdown_at(worker, now);
            if slowdown != 1.0 {
                duration = duration.mul_f64(slowdown);
            }
        }
        self.set_worker_state(worker, WorkerState::Computing, now);
        self.queue
            .schedule(now + duration, Event::ComputeDone(worker, attempt));
        Ok(())
    }

    fn evaluate(&mut self, now: VirtualTime) {
        if !self.total_pushes.is_multiple_of(self.config.eval_stride) {
            return;
        }
        let loss = self.eval.loss_of(self.host.replica_mut().params());
        self.sink.record(
            now,
            &TraceEvent::Eval {
                iterations: self.total_pushes,
                loss,
            },
        );
        self.loss_curve.push(LossPoint {
            time: now,
            iterations: self.total_pushes,
            loss,
        });
        if self.converged_at.is_none() && self.detector.observe(loss) {
            self.converged_at = Some(now);
            self.iterations_at_convergence = Some(self.total_pushes);
        }
    }

    fn on_push_arrive(&mut self, worker: WorkerId, now: VirtualTime) -> Result<(), SpecSyncError> {
        let lr = self.lr.lr_at(self.epochs_done) as f32;
        // Move the gradient out to satisfy the borrow checker, then back.
        let receipt = if self.workers[worker.index()].grad_is_sparse {
            let grad = std::mem::take(&mut self.workers[worker.index()].sparse_grad);
            let res = self.host.push_sparse(worker, &grad, lr);
            self.workers[worker.index()].sparse_grad = grad;
            res.map_err(replica_to_error)?
        } else {
            let grad = std::mem::take(&mut self.workers[worker.index()].grad);
            let res = self.host.push_dense(worker, &grad, lr);
            self.workers[worker.index()].grad = grad;
            res.map_err(replica_to_error)?
        };
        self.workers[worker.index()].iterations += 1;
        self.total_pushes += 1;
        self.sink.record(
            now,
            &TraceEvent::Push {
                worker,
                iteration: self.total_pushes,
            },
        );

        self.evaluate(now);

        // Notify the scheduler (control-plane message), piggybacking the
        // store's applied-push counter for this worker so the scheduler
        // can reconcile away lost notifies. The transfer is recorded on
        // delivery so the ledger never counts a notify the scheduler did
        // not see (dropped, or still in flight when the horizon cuts the
        // run short). Dropped notifies are deliberately not retried: the
        // next delivered notify's counter heals the gap.
        let applied = receipt.pushes_by_worker;
        let fate = self.fate_for(worker, MessageClass::Notify, now)?;
        for _ in 0..fate.copies {
            let notify_delay = self.delay(MessageClass::Notify) + fate.extra_delay;
            self.queue
                .schedule(now + notify_delay, Event::NotifyArrive(worker, applied));
        }

        // Epoch bookkeeping: an epoch completes when every live worker has
        // finished one more iteration (paper §II-B). Dead workers are
        // excluded — a crashed straggler must not freeze tuning for the
        // survivors. (A recovered worker can drag the minimum back down;
        // the `>` guard keeps the epoch counter monotone through that.)
        let min_iters = self
            .workers
            .iter()
            .filter(|w| w.state != WorkerState::Dead)
            .map(|w| w.iterations)
            .min()
            .unwrap_or(0);
        while min_iters > self.epochs_done {
            self.epochs_done += 1;
            self.scheduler.on_epoch_complete(now);
            self.hyper_trace
                .push((self.epochs_done, self.scheduler.hyperparams()));
        }

        self.after_push(worker, now)
    }

    fn on_resync(&mut self, worker: WorkerId, now: VirtualTime) -> Result<(), SpecSyncError> {
        let ctx = &mut self.workers[worker.index()];
        if ctx.state != WorkerState::Computing {
            // Too late: the iteration finished (or is pushing) — Algorithm 2
            // only aborts in-flight computation ("if that is not too late
            // yet", §IV-A). Dead workers land here too.
            return Ok(());
        }
        ctx.aborts += 1;
        ctx.attempt += 1; // invalidates the pending ComputeDone
        let wasted = now.saturating_since(ctx.compute_started);
        self.wasted_compute += wasted;
        self.sink
            .record(now, &TraceEvent::Resync { worker, wasted });
        self.issue_pull(worker, now)
    }

    /// A scheduled crash: discard in-flight compute, fence the epoch,
    /// shrink scheduler membership and release anyone gated on the dead
    /// worker so no scheme deadlocks.
    fn on_crash(&mut self, worker: WorkerId, now: VirtualTime) -> Result<(), SpecSyncError> {
        if self.workers[worker.index()].state == WorkerState::Dead {
            return Ok(());
        }
        {
            let ctx = &mut self.workers[worker.index()];
            ctx.attempt += 1; // invalidates any pending ComputeDone
            ctx.pending_params = None; // an in-flight pull is useless now
        }
        self.chaos.crashes += 1;
        self.sink.record(now, &TraceEvent::WorkerCrashed { worker });
        self.set_worker_state(worker, WorkerState::Dead, now);
        self.scheduler.try_mark_dead(worker, now)?;

        if let Some(barrier) = self.bsp.as_mut() {
            // Removing the dead worker from the wait set can complete the
            // current round for everyone else.
            if let Some(released) = barrier.deactivate(worker) {
                for w in released {
                    if self.workers[w.index()].state == WorkerState::Idle {
                        self.issue_pull(w, now)?;
                    }
                }
            }
        }
        if let Some(ssp) = self.ssp.as_mut() {
            ssp.deactivate(worker);
            self.ssp_blocked.retain(|w| *w != worker);
            // The dead worker may have been the straggler pinning the
            // minimum clock; recompute who is free to proceed.
            let unblocked = ssp.newly_unblocked(&self.ssp_blocked);
            self.ssp_blocked.retain(|w| !unblocked.contains(w));
            for w in unblocked {
                self.issue_pull(w, now)?;
            }
        }
        Ok(())
    }

    /// A scheduled recovery: rejoin in a fresh fencing epoch, grow
    /// scheduler membership back and start pulling again.
    fn on_recover(&mut self, worker: WorkerId, now: VirtualTime) -> Result<(), SpecSyncError> {
        if self.workers[worker.index()].state != WorkerState::Dead {
            return Ok(());
        }
        let epoch = {
            let ctx = &mut self.workers[worker.index()];
            ctx.epoch += 1;
            ctx.pending_params = None;
            ctx.epoch
        };
        self.chaos.recoveries += 1;
        self.scheduler.try_mark_alive(worker, now)?;
        self.sink
            .record(now, &TraceEvent::WorkerRecovered { worker, epoch });
        if let Some(barrier) = self.bsp.as_mut() {
            barrier.reactivate(worker);
        }
        if let Some(ssp) = self.ssp.as_mut() {
            ssp.reactivate(worker);
        }
        self.set_worker_state(worker, WorkerState::Idle, now);
        self.issue_pull(worker, now)
    }

    fn handle(&mut self, event: Event, now: VirtualTime) -> Result<(), SpecSyncError> {
        match event {
            Event::PullArrive(worker, epoch) => {
                let ctx = &self.workers[worker.index()];
                // Stale (pre-crash) or duplicate deliveries are ignored.
                if ctx.state == WorkerState::Pulling && ctx.epoch == epoch {
                    self.start_compute(worker, now)?;
                }
            }
            Event::PullRetry(worker, epoch, attempt) => {
                let ctx = &self.workers[worker.index()];
                if ctx.state == WorkerState::Pulling && ctx.epoch == epoch {
                    self.send_pull(worker, attempt, now)?;
                }
            }
            Event::ComputeDone(worker, attempt) => {
                let ctx = &self.workers[worker.index()];
                if ctx.attempt != attempt || ctx.state != WorkerState::Computing {
                    return Ok(()); // aborted or crashed mid-compute
                }
                self.workers[worker.index()].push_seq += 1;
                let seq = self.workers[worker.index()].push_seq;
                self.set_worker_state(worker, WorkerState::Pushing, now);
                self.send_push(worker, seq, 0, now)?;
            }
            Event::PushSend(worker, epoch, seq, attempt) => {
                let ctx = &self.workers[worker.index()];
                if ctx.state == WorkerState::Pushing && ctx.epoch == epoch && ctx.applied_seq < seq
                {
                    self.send_push(worker, seq, attempt, now)?;
                }
            }
            Event::PushArrive(worker, epoch, seq) => {
                if !self.host.is_available() {
                    // The receiving shard is mid-failover: the server
                    // refuses the delivery and the worker retransmits on
                    // the fixed retry timer. Not message loss — no
                    // attempt budget is spent; promotion bounds the wait.
                    self.chaos.blocked_on_failover += 1;
                    self.queue.schedule(
                        now + self.config.retry_timeout,
                        Event::PushArrive(worker, epoch, seq),
                    );
                    return Ok(());
                }
                self.record_transfer(now, MessageClass::PushGrad);
                let ctx = &self.workers[worker.index()];
                if ctx.state == WorkerState::Dead || ctx.epoch != epoch {
                    // Stale-push fencing: the sender crashed after sending.
                    let current = ctx.epoch;
                    self.chaos.fenced_pushes += 1;
                    self.sink.record(
                        now,
                        &TraceEvent::PushFenced {
                            worker,
                            epoch: current,
                        },
                    );
                    return Ok(());
                }
                if seq <= ctx.applied_seq {
                    self.chaos.duplicate_pushes_ignored += 1;
                    return Ok(());
                }
                self.workers[worker.index()].applied_seq = seq;
                self.on_push_arrive(worker, now)?;
            }
            Event::NotifyArrive(worker, applied) => {
                // Duplicated (or pathologically reordered) notifies carry a
                // counter we have already seen; drop them.
                if applied <= self.workers[worker.index()].notify_seen {
                    return Ok(());
                }
                self.workers[worker.index()].notify_seen = applied;
                self.record_transfer(now, MessageClass::Notify);
                if let Some(deadline) = self
                    .scheduler
                    .try_on_notify_reconciled(worker, applied, now)?
                {
                    self.queue.schedule(deadline, Event::CheckTimer(worker));
                }
            }
            Event::CheckTimer(worker) => {
                if self.scheduler.try_on_check(worker, now)? {
                    self.send_resync(worker, now)?;
                    // Only chaos runs arm the ack timeout: a lossless
                    // network always delivers, so the timer would be noise.
                    if self.faults.is_some() {
                        self.queue.schedule(
                            now + self.config.abort_ack_timeout,
                            Event::AbortAckTimeout(worker, now),
                        );
                    }
                }
            }
            Event::ResyncArrive(worker, issue) => {
                if issue <= self.workers[worker.index()].resync_seen {
                    return Ok(()); // duplicate copy
                }
                self.workers[worker.index()].resync_seen = issue;
                self.record_transfer(now, MessageClass::Resync);
                self.scheduler.try_on_abort_ack(worker, now)?;
                self.on_resync(worker, now)?;
            }
            Event::AbortAckTimeout(worker, issued_at) => {
                if self.scheduler.try_on_ack_timeout(worker, issued_at, now)? {
                    self.chaos.abort_reissues += 1;
                    self.send_resync(worker, now)?;
                }
            }
            Event::NaiveWaitDone(worker) => {
                if self.workers[worker.index()].state == WorkerState::Idle {
                    self.issue_pull(worker, now)?;
                }
            }
            Event::WorkerCrash(worker) => self.on_crash(worker, now)?,
            Event::WorkerRecover(worker) => self.on_recover(worker, now)?,
            Event::PullBlocked(worker, epoch) => {
                let ctx = &self.workers[worker.index()];
                if ctx.state == WorkerState::Pulling && ctx.epoch == epoch {
                    self.request_pull(worker, now)?;
                }
            }
            Event::ServerCrash(server) => {
                // A second crash of an already-down shard (or an unknown
                // index in a hostile plan) is a no-op.
                let crash = FailoverControl::Crash {
                    server: server as u64,
                };
                if self.host.failover(&crash).is_ok() {
                    self.chaos.server_crashes += 1;
                    self.queue.schedule(
                        now + self.config.failover_delay,
                        Event::ServerPromote(server),
                    );
                }
            }
            Event::ServerPromote(server) => {
                let promote = FailoverControl::Promote {
                    server: server as u64,
                };
                if let Ok(FailoverControl::Promoted {
                    version, replayed, ..
                }) = self.host.failover(&promote)
                {
                    self.chaos.failovers += 1;
                    self.chaos.journal_replayed += replayed;
                    self.sink.record(
                        now,
                        &TraceEvent::ShardFailover {
                            shard: server as u64,
                            version,
                            replayed,
                        },
                    );
                    // The scheduler co-resides with the server process in
                    // the paper's deployment: restart it from its state
                    // snapshot so Eq. 5–7 tuning resumes without a cold
                    // epoch (armed windows and pending aborts included).
                    let ckpt = self.scheduler.checkpoint();
                    self.scheduler = Scheduler::restore(ckpt, Arc::clone(&self.sink), now);
                    self.chaos.scheduler_recoveries += 1;
                }
            }
            Event::ServerRecover(server) => {
                // Ignored while the shard is still down (promotion is
                // already scheduled and will restore service first).
                let recover = FailoverControl::Recover {
                    server: server as u64,
                };
                if self.host.failover(&recover).is_ok() {
                    self.chaos.server_recoveries += 1;
                }
            }
            Event::StragglerStart(idx) => {
                if let Some(plan) = &self.faults {
                    if let Some(w) = plan.straggler_windows().get(idx) {
                        let (worker, slowdown) = (w.worker, w.slowdown);
                        let duration = w.end.saturating_since(w.start);
                        self.sink.record(
                            now,
                            &TraceEvent::Straggler {
                                worker,
                                slowdown,
                                duration,
                            },
                        );
                    }
                }
            }
        }
        Ok(())
    }

    fn run(mut self) -> Result<RunReport, SpecSyncError> {
        // Replay the chaos timeline into the queue up front so crashes,
        // recoveries and straggler markers interleave with protocol events
        // in virtual-time order.
        let (windows, crashes, server_crashes) = match &self.faults {
            Some(plan) => (
                plan.straggler_windows().to_vec(),
                plan.crash_schedule().to_vec(),
                plan.server_crash_schedule().to_vec(),
            ),
            None => (Vec::new(), Vec::new(), Vec::new()),
        };
        for (idx, w) in windows.iter().enumerate() {
            self.queue.schedule(w.start, Event::StragglerStart(idx));
        }
        for c in crashes {
            self.queue.schedule(c.at, Event::WorkerCrash(c.worker));
            if let Some(r) = c.recover_at {
                self.queue.schedule(r, Event::WorkerRecover(c.worker));
            }
        }
        for c in server_crashes {
            self.queue.schedule(c.at, Event::ServerCrash(c.server));
            if let Some(r) = c.recover_at {
                self.queue.schedule(r, Event::ServerRecover(c.server));
            }
        }

        // Kick off: every worker pulls at t = 0.
        for w in WorkerId::all(self.cluster.num_workers()) {
            self.issue_pull(w, VirtualTime::ZERO)?;
        }

        while let Some((now, event)) = self.queue.pop() {
            if now > self.config.max_virtual_time || self.total_pushes >= self.config.max_iterations
            {
                break;
            }
            self.handle(event, now)?;
            if self.config.stop_on_convergence && self.converged_at.is_some() {
                break;
            }
        }

        self.sink.flush();
        let finished_at = self.queue.now();
        let mean_staleness = if self.staleness_count == 0 {
            0.0
        } else {
            self.staleness_sum / self.staleness_count as f64
        };
        Ok(RunReport {
            scheme: self.scheme.label(),
            workload: self.workload.paper.name.to_string(),
            num_workers: self.cluster.num_workers(),
            seed: self.seed,
            converged_at: self.converged_at,
            iterations_at_convergence: self.iterations_at_convergence,
            total_iterations: self.total_pushes,
            total_aborts: self.workers.iter().map(|w| w.aborts).sum(),
            wasted_compute: self.wasted_compute,
            loss_curve: self.loss_curve,
            iterations_per_worker: self.workers.iter().map(|w| w.iterations).collect(),
            transfer: self.ledger,
            scheduler_stats: self.scheduler.stats(),
            hyperparams_trace: self.hyper_trace,
            mean_staleness,
            history: self.scheduler.history().clone(),
            chaos: self.chaos,
            finished_at,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceType;
    use specsync_simnet::{CrashEvent, LinkFaultProfile, ServerCrashEvent, StragglerWindow};

    fn tiny_cluster(n: usize) -> ClusterSpec {
        ClusterSpec::homogeneous(n, InstanceType::M4Xlarge)
    }

    fn quick_config() -> DriverConfig {
        DriverConfig {
            max_virtual_time: VirtualTime::from_secs(400),
            max_iterations: 100_000,
            ..DriverConfig::default()
        }
    }

    /// A workload that never converges, so runs always reach the horizon
    /// and iteration counts are budget-comparable.
    fn endless_workload() -> Workload {
        let mut w = Workload::tiny_test();
        w.target_loss = 0.0;
        w
    }

    fn horizon_config(secs: u64) -> DriverConfig {
        DriverConfig {
            max_virtual_time: VirtualTime::from_secs(secs),
            max_iterations: 100_000,
            ..DriverConfig::default()
        }
    }

    #[test]
    fn asp_run_converges_on_tiny_workload() {
        let report = Driver::new(
            Workload::tiny_test(),
            SchemeKind::Asp,
            tiny_cluster(4),
            quick_config(),
            42,
        )
        .run();
        assert!(
            report.converged_at.is_some(),
            "ASP failed to converge: final loss {:?}",
            report.final_loss()
        );
        assert!(report.total_iterations > 0);
        assert_eq!(report.total_aborts, 0);
        assert_eq!(report.iterations_per_worker.len(), 4);
    }

    #[test]
    fn runs_are_deterministic() {
        let run = || {
            Driver::new(
                Workload::tiny_test(),
                SchemeKind::Asp,
                tiny_cluster(3),
                quick_config(),
                7,
            )
            .run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.converged_at, b.converged_at);
        assert_eq!(a.total_iterations, b.total_iterations);
        assert_eq!(a.loss_curve.len(), b.loss_curve.len());
        assert_eq!(a.transfer.total_bytes(), b.transfer.total_bytes());
    }

    #[test]
    fn different_seeds_differ() {
        let a = Driver::new(
            Workload::tiny_test(),
            SchemeKind::Asp,
            tiny_cluster(3),
            quick_config(),
            1,
        )
        .run();
        let b = Driver::new(
            Workload::tiny_test(),
            SchemeKind::Asp,
            tiny_cluster(3),
            quick_config(),
            2,
        )
        .run();
        assert_ne!(a.converged_at, b.converged_at);
    }

    #[test]
    fn bsp_keeps_workers_in_lockstep() {
        let report = Driver::new(
            Workload::tiny_test(),
            SchemeKind::Bsp,
            tiny_cluster(4),
            quick_config(),
            11,
        )
        .run();
        let max = report.iterations_per_worker.iter().max().unwrap();
        let min = report.iterations_per_worker.iter().min().unwrap();
        assert!(
            max - min <= 1,
            "BSP spread too wide: {:?}",
            report.iterations_per_worker
        );
    }

    #[test]
    fn ssp_bounds_the_iteration_spread() {
        let report = Driver::new(
            Workload::tiny_test(),
            SchemeKind::Ssp { bound: 2 },
            tiny_cluster(4),
            quick_config(),
            11,
        )
        .run();
        let max = report.iterations_per_worker.iter().max().unwrap();
        let min = report.iterations_per_worker.iter().min().unwrap();
        assert!(
            max - min <= 3,
            "SSP spread exceeds bound+1: {:?}",
            report.iterations_per_worker
        );
    }

    #[test]
    fn specsync_fixed_aborts_and_converges() {
        let scheme = SchemeKind::specsync_fixed(SimDuration::from_secs_f64(0.05), 0.5);
        let report = Driver::new(
            Workload::tiny_test(),
            scheme,
            tiny_cluster(4),
            quick_config(),
            5,
        )
        .run();
        assert!(report.converged_at.is_some(), "SpecSync failed to converge");
        assert!(report.scheduler_stats.notifies > 0);
        assert!(
            report.total_aborts > 0,
            "expected at least one abort with a permissive config"
        );
        assert!(!report.wasted_compute.is_zero());
    }

    #[test]
    fn specsync_adaptive_retunes() {
        let report = Driver::new(
            Workload::tiny_test(),
            SchemeKind::specsync_adaptive(),
            tiny_cluster(4),
            quick_config(),
            5,
        )
        .run();
        assert!(report.converged_at.is_some());
        assert!(!report.hyperparams_trace.is_empty(), "no epochs completed");
    }

    #[test]
    fn naive_waiting_delays_increase_iteration_span() {
        let base = Driver::new(
            Workload::tiny_test(),
            SchemeKind::Asp,
            tiny_cluster(3),
            quick_config(),
            9,
        )
        .run();
        let delayed = Driver::new(
            Workload::tiny_test(),
            SchemeKind::NaiveWaiting {
                delay: SimDuration::from_secs_f64(0.2),
            },
            tiny_cluster(3),
            quick_config(),
            9,
        )
        .run();
        // Same wall-clock horizon, the delayed variant completes fewer
        // iterations per unit time.
        let base_rate = base.total_iterations as f64 / base.finished_at.as_secs_f64();
        let delayed_rate = delayed.total_iterations as f64 / delayed.finished_at.as_secs_f64();
        assert!(
            delayed_rate < base_rate,
            "delayed {delayed_rate} !< base {base_rate}"
        );
    }

    #[test]
    fn transfer_ledger_accounts_for_all_classes() {
        let scheme = SchemeKind::specsync_fixed(SimDuration::from_secs_f64(0.05), 0.5);
        let report = Driver::new(
            Workload::tiny_test(),
            scheme,
            tiny_cluster(4),
            quick_config(),
            5,
        )
        .run();
        assert!(report.transfer.bytes_for(MessageClass::PullParams) > 0);
        assert!(report.transfer.bytes_for(MessageClass::PushGrad) > 0);
        assert!(report.transfer.bytes_for(MessageClass::Notify) > 0);
        assert!(report.transfer.bytes_for(MessageClass::Resync) > 0);
        // Control traffic is negligible next to data traffic.
        let control = report.transfer.bytes_for(MessageClass::Notify)
            + report.transfer.bytes_for(MessageClass::Resync);
        assert!(control * 100 < report.transfer.total_bytes());
    }

    #[test]
    fn horizon_stops_non_converging_runs() {
        let config = DriverConfig {
            max_virtual_time: VirtualTime::from_secs(30),
            ..DriverConfig::default()
        };
        let report = Driver::new(
            endless_workload(),
            SchemeKind::Asp,
            tiny_cluster(2),
            config,
            3,
        )
        .run();
        assert!(report.converged_at.is_none());
        assert!(report.finished_at >= VirtualTime::from_secs(30));
    }

    #[test]
    fn fault_free_runs_keep_chaos_counters_at_zero() {
        let report = Driver::new(
            Workload::tiny_test(),
            SchemeKind::specsync_fixed(SimDuration::from_secs_f64(0.05), 0.5),
            tiny_cluster(4),
            quick_config(),
            5,
        )
        .run();
        assert_eq!(report.chaos, ChaosStats::default());
        assert_eq!(report.scheduler_stats.lost_notifies, 0);
        assert_eq!(report.scheduler_stats.abort_reissues, 0);
    }

    #[test]
    fn crashed_worker_stops_while_survivors_continue() {
        let plan = FaultPlan::new(&RngStreams::new(21)).with_crash(CrashEvent {
            worker: WorkerId::new(1),
            at: VirtualTime::from_secs(20),
            recover_at: None,
        });
        let report = Driver::new(
            endless_workload(),
            SchemeKind::Asp,
            tiny_cluster(4),
            horizon_config(60),
            21,
        )
        .with_faults(plan)
        .run();
        assert_eq!(report.chaos.crashes, 1);
        assert_eq!(report.chaos.recoveries, 0);
        let dead = report.iterations_per_worker[1];
        for (i, &iters) in report.iterations_per_worker.iter().enumerate() {
            if i != 1 {
                assert!(
                    iters > dead * 2,
                    "survivor {i} ({iters}) barely outpaced the dead worker ({dead})"
                );
            }
        }
    }

    #[test]
    fn recovered_worker_rejoins_and_pushes_again() {
        let crash = CrashEvent {
            worker: WorkerId::new(0),
            at: VirtualTime::from_secs(10),
            recover_at: Some(VirtualTime::from_secs(40)),
        };
        let plan = FaultPlan::new(&RngStreams::new(22)).with_crash(crash);
        let report = Driver::new(
            endless_workload(),
            SchemeKind::Asp,
            tiny_cluster(3),
            horizon_config(80),
            22,
        )
        .with_faults(plan)
        .run();
        assert_eq!(report.chaos.crashes, 1);
        assert_eq!(report.chaos.recoveries, 1);
        // ~10s pre-crash + ~40s post-recovery out of 80: well past what it
        // had at the crash, well short of the uninterrupted workers.
        let rejoined = report.iterations_per_worker[0];
        let others = report.iterations_per_worker[1];
        assert!(rejoined > 0);
        assert!(
            rejoined < others,
            "rejoined worker ({rejoined}) should trail uninterrupted peers ({others})"
        );
        assert_eq!(report.scheduler_stats.membership_changes, 2);
    }

    #[test]
    fn bsp_releases_the_barrier_when_a_worker_dies() {
        let plan = FaultPlan::new(&RngStreams::new(23)).with_crash(CrashEvent {
            worker: WorkerId::new(2),
            at: VirtualTime::from_secs(15),
            recover_at: None,
        });
        let report = Driver::new(
            endless_workload(),
            SchemeKind::Bsp,
            tiny_cluster(4),
            horizon_config(60),
            23,
        )
        .with_faults(plan)
        .run();
        // The survivors must keep making rounds long after the crash —
        // a deadlocked barrier would freeze everyone near the crash count.
        let dead = report.iterations_per_worker[2];
        let survivors: Vec<u64> = report
            .iterations_per_worker
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != 2)
            .map(|(_, &n)| n)
            .collect();
        assert!(
            survivors.iter().all(|&n| n > dead + 5),
            "survivors {survivors:?} stalled near the dead worker's count {dead}"
        );
        // Lockstep still holds among the survivors.
        let max = survivors.iter().max().unwrap();
        let min = survivors.iter().min().unwrap();
        assert!(max - min <= 1, "post-crash BSP spread: {survivors:?}");
    }

    #[test]
    fn ssp_unblocks_survivors_when_the_straggler_dies() {
        let plan = FaultPlan::new(&RngStreams::new(24)).with_crash(CrashEvent {
            worker: WorkerId::new(0),
            at: VirtualTime::from_secs(15),
            recover_at: None,
        });
        let report = Driver::new(
            endless_workload(),
            SchemeKind::Ssp { bound: 2 },
            tiny_cluster(4),
            horizon_config(60),
            24,
        )
        .with_faults(plan)
        .run();
        let dead = report.iterations_per_worker[0];
        for (i, &iters) in report.iterations_per_worker.iter().enumerate() {
            if i != 0 {
                assert!(
                    iters > dead + 2,
                    "survivor {i} ({iters}) is still gated on the dead worker ({dead})"
                );
            }
        }
    }

    #[test]
    fn lost_notifies_are_reconciled_from_the_push_counter() {
        let plan = FaultPlan::new(&RngStreams::new(25))
            .with_profile(MessageClass::Notify, LinkFaultProfile::drop_only(0.3));
        let report = Driver::new(
            endless_workload(),
            SchemeKind::specsync_fixed(SimDuration::from_secs_f64(0.05), 0.5),
            tiny_cluster(4),
            horizon_config(60),
            25,
        )
        .with_faults(plan)
        .run();
        assert!(report.chaos.dropped_messages > 0);
        assert!(
            report.scheduler_stats.lost_notifies > 0,
            "no notify loss reconciled despite 30% drop"
        );
        // Every history entry is either a delivered notify or a
        // reconciliation backfill — losses don't leak out of the record.
        assert_eq!(
            report.history.pushes().len() as u64,
            report.scheduler_stats.notifies + report.scheduler_stats.lost_notifies,
            "history != notifies + reconciled losses"
        );
        // The only pushes still missing from the history are tail losses
        // that no later notify could heal before the horizon.
        assert!(
            report.history.pushes().len() as u64 + 4 * 5 >= report.total_iterations,
            "reconciliation left more than a tail's worth of gaps"
        );
    }

    #[test]
    fn dropped_data_messages_are_retried_until_delivered() {
        let plan = FaultPlan::new(&RngStreams::new(26))
            .with_profile(MessageClass::PullParams, LinkFaultProfile::drop_only(0.4))
            .with_profile(MessageClass::PushGrad, LinkFaultProfile::drop_only(0.4));
        let report = Driver::new(
            endless_workload(),
            SchemeKind::Asp,
            tiny_cluster(3),
            horizon_config(60),
            26,
        )
        .with_faults(plan)
        .run();
        assert!(report.chaos.retries > 0, "no retries under 40% drop");
        assert!(report.total_iterations > 0, "no pushes ever delivered");
        let total: u64 = report.iterations_per_worker.iter().sum();
        assert_eq!(total, report.total_iterations);
    }

    #[test]
    fn duplicates_and_spikes_are_deduplicated_and_tolerated() {
        let profile = LinkFaultProfile {
            drop_prob: 0.0,
            duplicate_prob: 0.3,
            spike_prob: 0.3,
            spike: DurationSampler::Constant { secs: 0.05 },
        };
        let plan = FaultPlan::new(&RngStreams::new(27))
            .with_profile(MessageClass::PushGrad, profile)
            .with_profile(MessageClass::Notify, profile);
        let report = Driver::new(
            endless_workload(),
            SchemeKind::specsync_fixed(SimDuration::from_secs_f64(0.05), 0.5),
            tiny_cluster(3),
            horizon_config(60),
            27,
        )
        .with_faults(plan)
        .run();
        assert!(report.chaos.duplicated_messages > 0);
        assert!(report.chaos.delay_spikes > 0);
        assert!(
            report.chaos.duplicate_pushes_ignored > 0,
            "duplicated pushes were never deduplicated"
        );
        // Dedupe means per-worker iteration counts still sum to the total.
        let total: u64 = report.iterations_per_worker.iter().sum();
        assert_eq!(total, report.total_iterations);
    }

    #[test]
    fn straggler_window_slows_only_its_worker() {
        let plan = FaultPlan::new(&RngStreams::new(28)).with_straggler(StragglerWindow {
            worker: WorkerId::new(0),
            start: VirtualTime::ZERO,
            end: VirtualTime::from_secs(60),
            slowdown: 8.0,
        });
        let report = Driver::new(
            endless_workload(),
            SchemeKind::Asp,
            tiny_cluster(3),
            horizon_config(60),
            28,
        )
        .with_faults(plan)
        .run();
        let slow = report.iterations_per_worker[0];
        for (i, &iters) in report.iterations_per_worker.iter().enumerate() {
            if i != 0 {
                assert!(
                    iters > slow * 3,
                    "worker {i} ({iters}) not clearly faster than straggler ({slow})"
                );
            }
        }
    }

    #[test]
    fn server_crash_fails_over_and_the_run_completes() {
        let plan = FaultPlan::new(&RngStreams::new(31)).with_server_crash(ServerCrashEvent {
            server: 0,
            at: VirtualTime::from_secs(20),
            recover_at: Some(VirtualTime::from_secs(40)),
        });
        let report = Driver::new(
            endless_workload(),
            SchemeKind::specsync_fixed(SimDuration::from_secs_f64(0.05), 0.5),
            tiny_cluster(4),
            horizon_config(60),
            31,
        )
        .with_faults(plan)
        .run();
        assert_eq!(report.chaos.server_crashes, 1);
        assert_eq!(report.chaos.failovers, 1);
        assert_eq!(report.chaos.server_recoveries, 1);
        assert_eq!(report.chaos.scheduler_recoveries, 1);
        assert!(
            report.chaos.blocked_on_failover > 0,
            "a mid-epoch crash must park at least one pull/push"
        );
        assert!(
            report.chaos.journal_replayed > 0,
            "promotion should replay journaled pushes"
        );
        // The run kept training after the failover.
        assert!(report.total_iterations > 100);
        let total: u64 = report.iterations_per_worker.iter().sum();
        assert_eq!(total, report.total_iterations, "no push lost or doubled");
    }

    #[test]
    fn server_crash_without_recovery_keeps_training_on_the_backup() {
        let plan = FaultPlan::new(&RngStreams::new(32)).with_server_crash(ServerCrashEvent {
            server: 3,
            at: VirtualTime::from_secs(15),
            recover_at: None,
        });
        let report = Driver::new(
            endless_workload(),
            SchemeKind::Bsp,
            tiny_cluster(4),
            horizon_config(50),
            32,
        )
        .with_faults(plan)
        .run();
        assert_eq!(report.chaos.failovers, 1);
        assert_eq!(report.chaos.server_recoveries, 0);
        assert!(report.total_iterations > 50, "BSP wedged after failover");
        // Lockstep still holds through the failover window.
        let max = report.iterations_per_worker.iter().max().unwrap();
        let min = report.iterations_per_worker.iter().min().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn server_failover_runs_are_deterministic() {
        let run = || {
            let plan = FaultPlan::new(&RngStreams::new(33))
                .with_profile(MessageClass::PushGrad, LinkFaultProfile::drop_only(0.1))
                .with_server_crash(ServerCrashEvent {
                    server: 0,
                    at: VirtualTime::from_secs(12),
                    recover_at: Some(VirtualTime::from_secs(30)),
                });
            Driver::new(
                endless_workload(),
                SchemeKind::specsync_fixed(SimDuration::from_secs_f64(0.05), 0.5),
                tiny_cluster(3),
                horizon_config(45),
                33,
            )
            .with_faults(plan)
            .run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.total_iterations, b.total_iterations);
        assert_eq!(a.chaos, b.chaos);
        assert_eq!(a.iterations_per_worker, b.iterations_per_worker);
        assert_eq!(a.scheduler_stats, b.scheduler_stats);
        assert_eq!(a.transfer.total_bytes(), b.transfer.total_bytes());
    }

    #[test]
    fn chaos_runs_are_deterministic() {
        let run = || {
            let profile = LinkFaultProfile {
                drop_prob: 0.15,
                duplicate_prob: 0.1,
                spike_prob: 0.1,
                spike: DurationSampler::Constant { secs: 0.02 },
            };
            let plan = FaultPlan::new(&RngStreams::new(29))
                .with_profile(MessageClass::PullParams, profile)
                .with_profile(MessageClass::PushGrad, profile)
                .with_profile(MessageClass::Notify, profile)
                .with_profile(MessageClass::Resync, profile)
                .with_straggler(StragglerWindow {
                    worker: WorkerId::new(1),
                    start: VirtualTime::from_secs(10),
                    end: VirtualTime::from_secs(30),
                    slowdown: 4.0,
                })
                .with_crash(CrashEvent {
                    worker: WorkerId::new(2),
                    at: VirtualTime::from_secs(20),
                    recover_at: Some(VirtualTime::from_secs(35)),
                });
            Driver::new(
                endless_workload(),
                SchemeKind::specsync_fixed(SimDuration::from_secs_f64(0.05), 0.5),
                tiny_cluster(4),
                horizon_config(50),
                29,
            )
            .with_faults(plan)
            .run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.total_iterations, b.total_iterations);
        assert_eq!(a.chaos, b.chaos);
        assert_eq!(a.iterations_per_worker, b.iterations_per_worker);
        assert_eq!(a.transfer.total_bytes(), b.transfer.total_bytes());
        assert_eq!(a.scheduler_stats, b.scheduler_stats);
    }
}
