//! The virtual-time training driver.
//!
//! Composes the parameter store, the SpecSync scheduler, the sync-scheme
//! bookkeeping and the per-worker models into one discrete-event loop.
//! Gradient math is real (each worker computes actual minibatch gradients
//! against its possibly-stale replica); *time* is virtual: compute spans are
//! drawn from instance-type distributions and message delays from the
//! network model, so a 40-node hour-long EC2 run replays in milliseconds,
//! deterministically from a seed.
//!
//! Worker lifecycle (paper Algorithm 2, worker side):
//!
//! ```text
//! pull issued ──(pull bytes)──▶ PullArrive: compute gradient, start timer
//!    ▲                              │
//!    │ re-sync while computing      ▼
//!    └───────── ResyncArrive    ComputeDone ──(push bytes)──▶ PushArrive:
//!                                   apply to store, notify scheduler,
//!                                   next pull (gated by BSP/SSP/naïve wait)
//! ```

use std::sync::Arc;

use rand::rngs::StdRng;

use specsync_core::{Scheduler, SpecSyncError};
use specsync_ml::{BatchSampler, LrSchedule, Model, SparseGrad, Workload};
use specsync_ps::{MessageSizes, ParameterStore};
use specsync_simnet::{
    DurationSampler, EventQueue, MessageClass, NetworkModel, RngStreams, SimDuration,
    TransferLedger, VirtualTime, WorkerId,
};
use specsync_sync::{BaseScheme, BspBarrier, SchemeKind, SspClock, TuningMode};
use specsync_telemetry::{Event as TraceEvent, EventSink, LossCurve, NullSink, WorkerPhase};

use crate::report::{LossPoint, RunReport};
use crate::spec::ClusterSpec;

/// Driver tunables beyond workload/scheme/cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriverConfig {
    /// Hard horizon on virtual time; the run stops here if not converged.
    pub max_virtual_time: VirtualTime,
    /// Safety cap on total pushes.
    pub max_iterations: u64,
    /// Number of server shards for the parameter store.
    pub num_shards: usize,
    /// Evaluate the global loss every `eval_stride`-th push (1 = every push).
    pub eval_stride: u64,
    /// Stop as soon as the convergence criterion is met.
    pub stop_on_convergence: bool,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            max_virtual_time: VirtualTime::from_secs(200_000),
            max_iterations: 2_000_000,
            num_shards: 8,
            eval_stride: 1,
            stop_on_convergence: true,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    PullArrive(WorkerId),
    ComputeDone(WorkerId, u64),
    PushArrive(WorkerId),
    NotifyArrive(WorkerId),
    CheckTimer(WorkerId),
    ResyncArrive(WorkerId),
    NaiveWaitDone(WorkerId),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WorkerState {
    /// Waiting for a barrier/SSP gate or naïve-wait delay before pulling.
    Idle,
    /// Pull in flight.
    Pulling,
    /// Gradient computation in progress (abortable).
    Computing,
    /// Push in flight.
    Pushing,
}

impl WorkerState {
    /// The telemetry phase mirroring this driver state.
    fn phase(self) -> WorkerPhase {
        match self {
            WorkerState::Idle => WorkerPhase::Idle,
            WorkerState::Pulling => WorkerPhase::Pulling,
            WorkerState::Computing => WorkerPhase::Computing,
            WorkerState::Pushing => WorkerPhase::Pushing,
        }
    }
}

struct WorkerCtx {
    state: WorkerState,
    attempt: u64,
    model: Box<dyn Model>,
    sampler: BatchSampler,
    /// Dense gradient buffer (fallback for models without a sparse path).
    grad: Vec<f32>,
    /// Reusable sparse gradient accumulator.
    sparse_grad: SparseGrad,
    /// Whether the last computed gradient lives in `sparse_grad`.
    grad_is_sparse: bool,
    /// Replica delivered by the last pull, shared with the store's
    /// snapshot cache (and with every other worker that pulled the same
    /// version) instead of owning a copy.
    pending_params: Option<Arc<[f32]>>,
    iterations: u64,
    aborts: u64,
    compute_started: VirtualTime,
    compute_sampler: DurationSampler,
    rng: StdRng,
}

/// Runs one training experiment to convergence (or the horizon) and
/// produces a [`RunReport`].
pub struct Driver {
    workload: Workload,
    scheme: SchemeKind,
    cluster: ClusterSpec,
    config: DriverConfig,
    seed: u64,
    sink: Arc<dyn EventSink<VirtualTime>>,
}

impl std::fmt::Debug for Driver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Driver")
            .field("workload", &self.workload.paper.name)
            .field("scheme", &self.scheme.label())
            .field("workers", &self.cluster.num_workers())
            .finish()
    }
}

impl Driver {
    /// Creates a driver for (workload × scheme × cluster).
    pub fn new(
        workload: Workload,
        scheme: SchemeKind,
        cluster: ClusterSpec,
        config: DriverConfig,
        seed: u64,
    ) -> Self {
        Driver {
            workload,
            scheme,
            cluster,
            config,
            seed,
            sink: Arc::new(NullSink),
        }
    }

    /// Routes every protocol event of the run (pulls, pushes, notifies,
    /// abort decisions, re-syncs, tuning passes, evaluations, worker state
    /// transitions) to `sink`, stamped with virtual time. Emission points
    /// are deterministic, so with a deterministic sink two same-seed runs
    /// produce identical event streams.
    pub fn with_sink(mut self, sink: Arc<dyn EventSink<VirtualTime>>) -> Self {
        self.sink = sink;
        self
    }

    /// Runs the experiment.
    ///
    /// # Panics
    ///
    /// Panics on an internal wiring bug (scheme state missing, pull lost);
    /// [`try_run`](Self::try_run) surfaces those as [`SpecSyncError`]
    /// instead.
    pub fn run(self) -> RunReport {
        match self.try_run() {
            Ok(report) => report,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`run`](Self::run), but internal invariant violations become typed
    /// errors instead of panics — for embedding hosts that must not abort.
    pub fn try_run(self) -> Result<RunReport, SpecSyncError> {
        Simulation::new(self).run()
    }
}

/// The mutable simulation state (separate from `Driver` so `run` can
/// consume the config cleanly).
struct Simulation {
    workload: Workload,
    scheme: SchemeKind,
    cluster: ClusterSpec,
    config: DriverConfig,
    seed: u64,

    queue: EventQueue<Event>,
    net: NetworkModel,
    net_rng: StdRng,
    sizes: MessageSizes,
    ledger: TransferLedger,

    store: ParameterStore,
    scheduler: Scheduler,
    workers: Vec<WorkerCtx>,
    eval: specsync_ml::EvalSet,
    detector: specsync_ml::ConvergenceDetector,
    lr: LrSchedule,

    bsp: Option<BspBarrier>,
    ssp: Option<SspClock>,
    ssp_blocked: Vec<WorkerId>,

    sink: Arc<dyn EventSink<VirtualTime>>,

    total_pushes: u64,
    epochs_done: u64,
    loss_curve: LossCurve<VirtualTime>,
    converged_at: Option<VirtualTime>,
    iterations_at_convergence: Option<u64>,
    wasted_compute: SimDuration,
    staleness_sum: f64,
    staleness_count: u64,
    hyper_trace: Vec<(u64, specsync_core::Hyperparams)>,
}

impl Simulation {
    fn new(driver: Driver) -> Self {
        let Driver {
            workload,
            scheme,
            cluster,
            config,
            seed,
            sink,
        } = driver;
        let m = cluster.num_workers();
        let streams = RngStreams::new(seed);
        let bundle = workload.build(m, seed);

        let initial = bundle.workers[0].params().to_vec();
        let mut store =
            ParameterStore::new(initial, config.num_shards).with_momentum(workload.momentum);
        if let Some(clip) = workload.grad_clip {
            store = store.with_grad_clip(clip);
        }
        let sizes = MessageSizes::for_model(workload.paper.num_parameters);

        let tuning = match scheme {
            SchemeKind::SpecSync { tuning, .. } => tuning,
            // Non-speculative schemes still use the scheduler as the
            // history recorder, with speculation disabled.
            _ => TuningMode::Fixed {
                abort_time: SimDuration::ZERO,
                abort_rate: f64::MAX,
            },
        };
        // The scheduler emits its own decisions (notify, abort-issued,
        // epoch-tuned) through the same sink as the driver's data-plane
        // events, so a trace interleaves both sides of the protocol.
        let scheduler = Scheduler::new(m, tuning).with_sink(Arc::clone(&sink));

        let workers = bundle
            .workers
            .into_iter()
            .enumerate()
            .map(|(i, model)| {
                let n = model.num_params();
                let sampler: BatchSampler = workload.sampler_for(model.as_ref(), i, seed ^ 0xBA7C);
                WorkerCtx {
                    state: WorkerState::Idle,
                    attempt: 0,
                    model,
                    sampler,
                    grad: vec![0.0; n],
                    sparse_grad: SparseGrad::new(),
                    grad_is_sparse: false,
                    pending_params: None,
                    iterations: 0,
                    aborts: 0,
                    compute_started: VirtualTime::ZERO,
                    compute_sampler: cluster
                        .instance(i)
                        .iteration_sampler(workload.mean_iteration_secs, workload.iteration_cv),
                    rng: streams.indexed_stream("compute", i),
                }
            })
            .collect();

        let (bsp, ssp) = match scheme {
            SchemeKind::Bsp => (Some(BspBarrier::new(m)), None),
            SchemeKind::Ssp { bound } => (None, Some(SspClock::new(m, bound))),
            SchemeKind::SpecSync {
                base: BaseScheme::Ssp { bound },
                ..
            } => (None, Some(SspClock::new(m, bound))),
            _ => (None, None),
        };

        Simulation {
            lr: workload.lr.clone(),
            detector: workload.convergence_detector(),
            net: cluster.network(),
            net_rng: streams.stream("net"),
            sizes,
            ledger: TransferLedger::new(),
            queue: EventQueue::new(),
            store,
            scheduler,
            workers,
            eval: bundle.eval,
            bsp,
            ssp,
            ssp_blocked: Vec::new(),
            sink,
            total_pushes: 0,
            epochs_done: 0,
            loss_curve: LossCurve::new(),
            converged_at: None,
            iterations_at_convergence: None,
            wasted_compute: SimDuration::ZERO,
            staleness_sum: 0.0,
            staleness_count: 0,
            hyper_trace: Vec::new(),
            workload,
            scheme,
            cluster,
            config,
            seed,
        }
    }

    fn delay(&mut self, class: MessageClass) -> SimDuration {
        let bytes = self.sizes.bytes_for(class);
        self.net.delay(bytes, &mut self.net_rng)
    }

    fn record_transfer(&mut self, at: VirtualTime, class: MessageClass) {
        let bytes = self.sizes.bytes_for(class);
        self.ledger.record(at, class, bytes);
    }

    /// Transitions `worker` to `state`, reporting the transition to the
    /// event sink.
    fn set_worker_state(&mut self, worker: WorkerId, state: WorkerState, now: VirtualTime) {
        self.workers[worker.index()].state = state;
        self.sink.record(
            now,
            &TraceEvent::WorkerState {
                worker,
                state: state.phase(),
            },
        );
    }

    /// Issues a pull for `worker` at `now`: snapshot immediately (server
    /// state at request time), deliver after the transfer delay.
    fn issue_pull(&mut self, worker: WorkerId, now: VirtualTime) {
        let staleness = self.store.staleness_of(worker);
        self.staleness_sum += staleness as f64;
        self.staleness_count += 1;
        self.sink
            .record(now, &TraceEvent::Pull { worker, staleness });
        let snapshot = self.store.pull(worker);
        self.scheduler.on_pull(worker, now);
        self.workers[worker.index()].pending_params = Some(snapshot.into_shared());
        self.set_worker_state(worker, WorkerState::Pulling, now);
        let delay = self.delay(MessageClass::PullParams);
        let at = now + delay;
        self.record_transfer(at, MessageClass::PullParams);
        self.queue.schedule(at, Event::PullArrive(worker));
    }

    /// Scheme-specific gate between finishing a push and issuing the next
    /// pull. Errs if the scheme's state (barrier/clock) was never built —
    /// a wiring bug reported with context instead of a bare `expect`.
    fn after_push(&mut self, worker: WorkerId, now: VirtualTime) -> Result<(), SpecSyncError> {
        match self.scheme {
            SchemeKind::Asp
            | SchemeKind::SpecSync {
                base: BaseScheme::Asp,
                ..
            } => {
                self.issue_pull(worker, now);
            }
            SchemeKind::NaiveWaiting { delay } => {
                self.set_worker_state(worker, WorkerState::Idle, now);
                self.queue
                    .schedule(now + delay, Event::NaiveWaitDone(worker));
            }
            SchemeKind::Bsp => {
                self.set_worker_state(worker, WorkerState::Idle, now);
                let barrier = self.bsp.as_mut().ok_or(SpecSyncError::SchemeStateMissing {
                    what: "BSP barrier",
                })?;
                if let Some(released) = barrier.arrive(worker) {
                    for w in released {
                        self.issue_pull(w, now);
                    }
                }
            }
            SchemeKind::Ssp { .. }
            | SchemeKind::SpecSync {
                base: BaseScheme::Ssp { .. },
                ..
            } => {
                let ssp = self
                    .ssp
                    .as_mut()
                    .ok_or(SpecSyncError::SchemeStateMissing { what: "SSP clock" })?;
                ssp.complete_iteration(worker);
                // Release any worker the completion unblocked.
                let unblocked = ssp.newly_unblocked(&self.ssp_blocked);
                self.ssp_blocked.retain(|w| !unblocked.contains(w));
                let can_start = ssp.can_start_next(worker);
                for w in unblocked {
                    self.issue_pull(w, now);
                }
                if can_start {
                    self.issue_pull(worker, now);
                } else {
                    self.set_worker_state(worker, WorkerState::Idle, now);
                    self.ssp_blocked.push(worker);
                }
            }
        }
        Ok(())
    }

    fn start_compute(&mut self, worker: WorkerId, now: VirtualTime) -> Result<(), SpecSyncError> {
        let ctx = &mut self.workers[worker.index()];
        let params = ctx
            .pending_params
            .take()
            .ok_or(SpecSyncError::MissingPullParams {
                worker: worker.index(),
            })?;
        ctx.model.set_params(&params);
        drop(params); // release the shared snapshot before the long compute
        let batch = ctx.sampler.next_batch();
        ctx.grad_is_sparse = ctx.model.sparse_gradient(&batch, &mut ctx.sparse_grad);
        if !ctx.grad_is_sparse {
            ctx.model.gradient(&batch, &mut ctx.grad);
        }
        ctx.compute_started = now;
        ctx.attempt += 1;
        let duration = ctx.compute_sampler.sample(&mut ctx.rng);
        let attempt = ctx.attempt;
        self.set_worker_state(worker, WorkerState::Computing, now);
        self.queue
            .schedule(now + duration, Event::ComputeDone(worker, attempt));
        Ok(())
    }

    fn evaluate(&mut self, now: VirtualTime) {
        if !self.total_pushes.is_multiple_of(self.config.eval_stride) {
            return;
        }
        let loss = self.eval.loss_of(self.store.params());
        self.sink.record(
            now,
            &TraceEvent::Eval {
                iterations: self.total_pushes,
                loss,
            },
        );
        self.loss_curve.push(LossPoint {
            time: now,
            iterations: self.total_pushes,
            loss,
        });
        if self.converged_at.is_none() && self.detector.observe(loss) {
            self.converged_at = Some(now);
            self.iterations_at_convergence = Some(self.total_pushes);
        }
    }

    fn on_push_arrive(&mut self, worker: WorkerId, now: VirtualTime) -> Result<(), SpecSyncError> {
        let lr = self.lr.lr_at(self.epochs_done) as f32;
        // Move the gradient out to satisfy the borrow checker, then back.
        if self.workers[worker.index()].grad_is_sparse {
            let grad = std::mem::take(&mut self.workers[worker.index()].sparse_grad);
            self.store.apply_push_sparse(worker, &grad, lr);
            self.workers[worker.index()].sparse_grad = grad;
        } else {
            let grad = std::mem::take(&mut self.workers[worker.index()].grad);
            self.store.apply_push(worker, &grad, lr);
            self.workers[worker.index()].grad = grad;
        }
        self.workers[worker.index()].iterations += 1;
        self.total_pushes += 1;
        self.record_transfer(now, MessageClass::PushGrad);
        self.sink.record(
            now,
            &TraceEvent::Push {
                worker,
                iteration: self.total_pushes,
            },
        );

        self.evaluate(now);

        // Notify the scheduler (control-plane message). The transfer is
        // recorded on delivery so the ledger never counts a notify the
        // scheduler did not see (a notify can still be in flight when the
        // horizon cuts the run short).
        let notify_delay = self.delay(MessageClass::Notify);
        self.queue
            .schedule(now + notify_delay, Event::NotifyArrive(worker));

        // Epoch bookkeeping: an epoch completes when every worker has
        // finished one more iteration (paper §II-B).
        let min_iters = self.workers.iter().map(|w| w.iterations).min().unwrap_or(0);
        while min_iters > self.epochs_done {
            self.epochs_done += 1;
            self.scheduler.on_epoch_complete(now);
            self.hyper_trace
                .push((self.epochs_done, self.scheduler.hyperparams()));
        }

        self.after_push(worker, now)
    }

    fn on_resync(&mut self, worker: WorkerId, now: VirtualTime) {
        let ctx = &mut self.workers[worker.index()];
        if ctx.state != WorkerState::Computing {
            // Too late: the iteration finished (or is pushing) — Algorithm 2
            // only aborts in-flight computation ("if that is not too late
            // yet", §IV-A).
            return;
        }
        ctx.aborts += 1;
        ctx.attempt += 1; // invalidates the pending ComputeDone
        let wasted = now.saturating_since(ctx.compute_started);
        self.wasted_compute += wasted;
        self.sink
            .record(now, &TraceEvent::Resync { worker, wasted });
        self.issue_pull(worker, now);
    }

    fn handle(&mut self, event: Event, now: VirtualTime) -> Result<(), SpecSyncError> {
        match event {
            Event::PullArrive(worker) => self.start_compute(worker, now)?,
            Event::ComputeDone(worker, attempt) => {
                let ctx = &mut self.workers[worker.index()];
                if ctx.attempt != attempt || ctx.state != WorkerState::Computing {
                    return Ok(()); // aborted mid-compute
                }
                self.set_worker_state(worker, WorkerState::Pushing, now);
                let delay = self.delay(MessageClass::PushGrad);
                self.queue.schedule(now + delay, Event::PushArrive(worker));
            }
            Event::PushArrive(worker) => self.on_push_arrive(worker, now)?,
            Event::NotifyArrive(worker) => {
                self.record_transfer(now, MessageClass::Notify);
                if let Some(deadline) = self.scheduler.try_on_notify(worker, now)? {
                    self.queue.schedule(deadline, Event::CheckTimer(worker));
                }
            }
            Event::CheckTimer(worker) => {
                if self.scheduler.try_on_check(worker, now)? {
                    let delay = self.delay(MessageClass::Resync);
                    self.queue
                        .schedule(now + delay, Event::ResyncArrive(worker));
                }
            }
            Event::ResyncArrive(worker) => {
                self.record_transfer(now, MessageClass::Resync);
                self.on_resync(worker, now);
            }
            Event::NaiveWaitDone(worker) => self.issue_pull(worker, now),
        }
        Ok(())
    }

    fn run(mut self) -> Result<RunReport, SpecSyncError> {
        // Kick off: every worker pulls at t = 0.
        for w in WorkerId::all(self.cluster.num_workers()) {
            self.issue_pull(w, VirtualTime::ZERO);
        }

        while let Some((now, event)) = self.queue.pop() {
            if now > self.config.max_virtual_time || self.total_pushes >= self.config.max_iterations
            {
                break;
            }
            self.handle(event, now)?;
            if self.config.stop_on_convergence && self.converged_at.is_some() {
                break;
            }
        }

        self.sink.flush();
        let finished_at = self.queue.now();
        let mean_staleness = if self.staleness_count == 0 {
            0.0
        } else {
            self.staleness_sum / self.staleness_count as f64
        };
        Ok(RunReport {
            scheme: self.scheme.label(),
            workload: self.workload.paper.name.to_string(),
            num_workers: self.cluster.num_workers(),
            seed: self.seed,
            converged_at: self.converged_at,
            iterations_at_convergence: self.iterations_at_convergence,
            total_iterations: self.total_pushes,
            total_aborts: self.workers.iter().map(|w| w.aborts).sum(),
            wasted_compute: self.wasted_compute,
            loss_curve: self.loss_curve,
            iterations_per_worker: self.workers.iter().map(|w| w.iterations).collect(),
            transfer: self.ledger,
            scheduler_stats: self.scheduler.stats(),
            hyperparams_trace: self.hyper_trace,
            mean_staleness,
            history: self.scheduler.history().clone(),
            finished_at,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceType;

    fn tiny_cluster(n: usize) -> ClusterSpec {
        ClusterSpec::homogeneous(n, InstanceType::M4Xlarge)
    }

    fn quick_config() -> DriverConfig {
        DriverConfig {
            max_virtual_time: VirtualTime::from_secs(400),
            max_iterations: 100_000,
            ..DriverConfig::default()
        }
    }

    #[test]
    fn asp_run_converges_on_tiny_workload() {
        let report = Driver::new(
            Workload::tiny_test(),
            SchemeKind::Asp,
            tiny_cluster(4),
            quick_config(),
            42,
        )
        .run();
        assert!(
            report.converged_at.is_some(),
            "ASP failed to converge: final loss {:?}",
            report.final_loss()
        );
        assert!(report.total_iterations > 0);
        assert_eq!(report.total_aborts, 0);
        assert_eq!(report.iterations_per_worker.len(), 4);
    }

    #[test]
    fn runs_are_deterministic() {
        let run = || {
            Driver::new(
                Workload::tiny_test(),
                SchemeKind::Asp,
                tiny_cluster(3),
                quick_config(),
                7,
            )
            .run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.converged_at, b.converged_at);
        assert_eq!(a.total_iterations, b.total_iterations);
        assert_eq!(a.loss_curve.len(), b.loss_curve.len());
        assert_eq!(a.transfer.total_bytes(), b.transfer.total_bytes());
    }

    #[test]
    fn different_seeds_differ() {
        let a = Driver::new(
            Workload::tiny_test(),
            SchemeKind::Asp,
            tiny_cluster(3),
            quick_config(),
            1,
        )
        .run();
        let b = Driver::new(
            Workload::tiny_test(),
            SchemeKind::Asp,
            tiny_cluster(3),
            quick_config(),
            2,
        )
        .run();
        assert_ne!(a.converged_at, b.converged_at);
    }

    #[test]
    fn bsp_keeps_workers_in_lockstep() {
        let report = Driver::new(
            Workload::tiny_test(),
            SchemeKind::Bsp,
            tiny_cluster(4),
            quick_config(),
            11,
        )
        .run();
        let max = report.iterations_per_worker.iter().max().unwrap();
        let min = report.iterations_per_worker.iter().min().unwrap();
        assert!(
            max - min <= 1,
            "BSP spread too wide: {:?}",
            report.iterations_per_worker
        );
    }

    #[test]
    fn ssp_bounds_the_iteration_spread() {
        let report = Driver::new(
            Workload::tiny_test(),
            SchemeKind::Ssp { bound: 2 },
            tiny_cluster(4),
            quick_config(),
            11,
        )
        .run();
        let max = report.iterations_per_worker.iter().max().unwrap();
        let min = report.iterations_per_worker.iter().min().unwrap();
        assert!(
            max - min <= 3,
            "SSP spread exceeds bound+1: {:?}",
            report.iterations_per_worker
        );
    }

    #[test]
    fn specsync_fixed_aborts_and_converges() {
        let scheme = SchemeKind::specsync_fixed(SimDuration::from_secs_f64(0.05), 0.5);
        let report = Driver::new(
            Workload::tiny_test(),
            scheme,
            tiny_cluster(4),
            quick_config(),
            5,
        )
        .run();
        assert!(report.converged_at.is_some(), "SpecSync failed to converge");
        assert!(report.scheduler_stats.notifies > 0);
        assert!(
            report.total_aborts > 0,
            "expected at least one abort with a permissive config"
        );
        assert!(!report.wasted_compute.is_zero());
    }

    #[test]
    fn specsync_adaptive_retunes() {
        let report = Driver::new(
            Workload::tiny_test(),
            SchemeKind::specsync_adaptive(),
            tiny_cluster(4),
            quick_config(),
            5,
        )
        .run();
        assert!(report.converged_at.is_some());
        assert!(!report.hyperparams_trace.is_empty(), "no epochs completed");
    }

    #[test]
    fn naive_waiting_delays_increase_iteration_span() {
        let base = Driver::new(
            Workload::tiny_test(),
            SchemeKind::Asp,
            tiny_cluster(3),
            quick_config(),
            9,
        )
        .run();
        let delayed = Driver::new(
            Workload::tiny_test(),
            SchemeKind::NaiveWaiting {
                delay: SimDuration::from_secs_f64(0.2),
            },
            tiny_cluster(3),
            quick_config(),
            9,
        )
        .run();
        // Same wall-clock horizon, the delayed variant completes fewer
        // iterations per unit time.
        let base_rate = base.total_iterations as f64 / base.finished_at.as_secs_f64();
        let delayed_rate = delayed.total_iterations as f64 / delayed.finished_at.as_secs_f64();
        assert!(
            delayed_rate < base_rate,
            "delayed {delayed_rate} !< base {base_rate}"
        );
    }

    #[test]
    fn transfer_ledger_accounts_for_all_classes() {
        let scheme = SchemeKind::specsync_fixed(SimDuration::from_secs_f64(0.05), 0.5);
        let report = Driver::new(
            Workload::tiny_test(),
            scheme,
            tiny_cluster(4),
            quick_config(),
            5,
        )
        .run();
        assert!(report.transfer.bytes_for(MessageClass::PullParams) > 0);
        assert!(report.transfer.bytes_for(MessageClass::PushGrad) > 0);
        assert!(report.transfer.bytes_for(MessageClass::Notify) > 0);
        assert!(report.transfer.bytes_for(MessageClass::Resync) > 0);
        // Control traffic is negligible next to data traffic.
        let control = report.transfer.bytes_for(MessageClass::Notify)
            + report.transfer.bytes_for(MessageClass::Resync);
        assert!(control * 100 < report.transfer.total_bytes());
    }

    #[test]
    fn horizon_stops_non_converging_runs() {
        let mut workload = Workload::tiny_test();
        workload.target_loss = 0.0; // unreachable
        let config = DriverConfig {
            max_virtual_time: VirtualTime::from_secs(30),
            ..DriverConfig::default()
        };
        let report = Driver::new(workload, SchemeKind::Asp, tiny_cluster(2), config, 3).run();
        assert!(report.converged_at.is_none());
        assert!(report.finished_at >= VirtualTime::from_secs(30));
    }
}
