//! Cluster specifications matching the paper's testbeds (§VI-A).

use serde::{Deserialize, Serialize};
use specsync_simnet::NetworkModel;

use crate::instance::InstanceType;

/// The composition of a simulated cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    workers: Vec<InstanceType>,
    network: NetworkModel,
}

impl ClusterSpec {
    /// A homogeneous cluster of `n` nodes of the given type.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn homogeneous(n: usize, instance: InstanceType) -> Self {
        assert!(n > 0, "cluster needs at least one worker");
        ClusterSpec {
            workers: vec![instance; n],
            network: NetworkModel::ec2_like(),
        }
    }

    /// The paper's Cluster 1: 40 × `m4.xlarge` (effectiveness evaluation).
    pub fn paper_cluster1() -> Self {
        Self::homogeneous(40, InstanceType::M4Xlarge)
    }

    /// The paper's Cluster 2: 10 × `m3.xlarge`, 10 × `m3.2xlarge`,
    /// 10 × `m4.xlarge`, 10 × `m4.2xlarge` (heterogeneity evaluation).
    pub fn paper_cluster2() -> Self {
        let mut workers = Vec::with_capacity(40);
        workers.extend(std::iter::repeat_n(InstanceType::M3Xlarge, 10));
        workers.extend(std::iter::repeat_n(InstanceType::M32xlarge, 10));
        workers.extend(std::iter::repeat_n(InstanceType::M4Xlarge, 10));
        workers.extend(std::iter::repeat_n(InstanceType::M42xlarge, 10));
        ClusterSpec {
            workers,
            network: NetworkModel::ec2_like(),
        }
    }

    /// The paper's scalability clusters: `n ∈ {20, 30, 40}` × `m4.xlarge`.
    pub fn paper_sized(n: usize) -> Self {
        Self::homogeneous(n, InstanceType::M4Xlarge)
    }

    /// Replaces the network model.
    pub fn with_network(mut self, network: NetworkModel) -> Self {
        self.network = network;
        self
    }

    /// Number of workers.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Instance type of worker `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn instance(&self, i: usize) -> InstanceType {
        self.workers[i]
    }

    /// All worker instance types in order.
    pub fn instances(&self) -> &[InstanceType] {
        &self.workers
    }

    /// The interconnect model.
    pub fn network(&self) -> NetworkModel {
        self.network
    }

    /// Whether all workers share one instance type.
    pub fn is_homogeneous(&self) -> bool {
        self.workers.windows(2).all(|w| w[0] == w[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster1_matches_paper() {
        let c = ClusterSpec::paper_cluster1();
        assert_eq!(c.num_workers(), 40);
        assert!(c.is_homogeneous());
        assert_eq!(c.instance(0), InstanceType::M4Xlarge);
    }

    #[test]
    fn cluster2_is_four_way_heterogeneous() {
        let c = ClusterSpec::paper_cluster2();
        assert_eq!(c.num_workers(), 40);
        assert!(!c.is_homogeneous());
        let m3x = c
            .instances()
            .iter()
            .filter(|&&i| i == InstanceType::M3Xlarge)
            .count();
        assert_eq!(m3x, 10);
        let m42 = c
            .instances()
            .iter()
            .filter(|&&i| i == InstanceType::M42xlarge)
            .count();
        assert_eq!(m42, 10);
    }

    #[test]
    fn sized_clusters_for_scalability() {
        for n in [20, 30, 40] {
            let c = ClusterSpec::paper_sized(n);
            assert_eq!(c.num_workers(), n);
        }
    }

    #[test]
    fn with_network_overrides() {
        let c = ClusterSpec::homogeneous(2, InstanceType::M4Xlarge)
            .with_network(NetworkModel::instant());
        assert_eq!(c.network(), NetworkModel::instant());
    }
}
