//! EC2-like instance-type profiles.
//!
//! The paper's testbeds (§VI-A) are built from four instance types; what
//! matters to synchronization dynamics is their *relative* compute speed
//! and timing jitter, which is what these profiles model. Speed factors are
//! scaled from the per-core performance of the respective EC2 generations
//! (m4 ≈ Haswell/Broadwell, m3 ≈ Ivy Bridge; the 2xlarge sizes finish a
//! fixed batch faster than xlarge at these workloads' per-node batch
//! sizes).

use serde::{Deserialize, Serialize};
use specsync_simnet::DurationSampler;

/// An EC2-like machine profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstanceType {
    /// `m4.xlarge` — the paper's homogeneous baseline (speed 1.0).
    M4Xlarge,
    /// `m4.2xlarge` — faster (speed 0.75).
    M42xlarge,
    /// `m3.xlarge` — older generation, slower (speed 1.30).
    M3Xlarge,
    /// `m3.2xlarge` — older generation, larger (speed 0.95).
    M32xlarge,
}

impl InstanceType {
    /// Relative time factor: a batch that takes `T` on `m4.xlarge` takes
    /// `factor × T` here.
    pub fn speed_factor(self) -> f64 {
        match self {
            InstanceType::M4Xlarge => 1.0,
            InstanceType::M42xlarge => 0.75,
            InstanceType::M3Xlarge => 1.30,
            InstanceType::M32xlarge => 0.95,
        }
    }

    /// Coefficient of variation of iteration times on this instance
    /// (older generations on shared tenancy jitter more).
    pub fn jitter_cv(self) -> f64 {
        match self {
            InstanceType::M4Xlarge | InstanceType::M42xlarge => 0.18,
            InstanceType::M3Xlarge | InstanceType::M32xlarge => 0.25,
        }
    }

    /// The EC2 API name.
    pub fn name(self) -> &'static str {
        match self {
            InstanceType::M4Xlarge => "m4.xlarge",
            InstanceType::M42xlarge => "m4.2xlarge",
            InstanceType::M3Xlarge => "m3.xlarge",
            InstanceType::M32xlarge => "m3.2xlarge",
        }
    }

    /// The iteration-time distribution for this instance, given the
    /// workload's mean iteration time and base jitter on `m4.xlarge`.
    ///
    /// # Panics
    ///
    /// Panics if `base_mean_secs` is not positive.
    pub fn iteration_sampler(self, base_mean_secs: f64, base_cv: f64) -> DurationSampler {
        assert!(base_mean_secs > 0.0, "iteration time must be positive");
        DurationSampler::LogNormal {
            mean: base_mean_secs * self.speed_factor(),
            cv: base_cv.max(self.jitter_cv()),
        }
    }
}

impl std::fmt::Display for InstanceType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn m4_xlarge_is_the_baseline() {
        assert_eq!(InstanceType::M4Xlarge.speed_factor(), 1.0);
    }

    #[test]
    fn speed_ordering_matches_hardware() {
        assert!(InstanceType::M42xlarge.speed_factor() < InstanceType::M4Xlarge.speed_factor());
        assert!(InstanceType::M3Xlarge.speed_factor() > InstanceType::M4Xlarge.speed_factor());
    }

    #[test]
    fn sampler_scales_mean_by_speed() {
        let s = InstanceType::M3Xlarge.iteration_sampler(10.0, 0.1);
        assert!((s.mean_secs() - 13.0).abs() < 1e-9);
    }

    #[test]
    fn names_are_ec2_api_names() {
        assert_eq!(InstanceType::M32xlarge.to_string(), "m3.2xlarge");
    }
}
