//! Run reports: everything a training run produces for analysis.

use serde::{Deserialize, Serialize};
use specsync_core::{Hyperparams, PushHistory, SchedulerStats};
use specsync_simnet::{SimDuration, TransferLedger, VirtualTime};
use specsync_telemetry::{LossCurve, LossSample};

/// One point on the simulator's loss curve: a
/// [`LossSample`] stamped with virtual time.
pub type LossPoint = LossSample<VirtualTime>;

/// Counters for every fault injected and every degradation decision the
/// driver took. All-zero for fault-free runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosStats {
    /// Messages the fault plan dropped on the wire.
    pub dropped_messages: u64,
    /// Messages delivered twice.
    pub duplicated_messages: u64,
    /// Messages hit by a delay spike.
    pub delay_spikes: u64,
    /// Bounded retransmissions scheduled for dropped pulls/pushes.
    pub retries: u64,
    /// Pushes fenced off for carrying a stale (pre-crash) epoch.
    pub fenced_pushes: u64,
    /// Duplicated pushes ignored by sequence-number dedupe.
    pub duplicate_pushes_ignored: u64,
    /// Worker crashes replayed from the plan.
    pub crashes: u64,
    /// Worker recoveries replayed from the plan.
    pub recoveries: u64,
    /// Aborts re-issued after an unacknowledged ack timeout.
    pub abort_reissues: u64,
    /// Parameter-server shard crashes replayed from the plan.
    pub server_crashes: u64,
    /// Shard failovers completed (warm backup promoted to serving).
    pub failovers: u64,
    /// Journaled pushes replayed into a backup during promotion.
    pub journal_replayed: u64,
    /// Crashed server nodes re-admitted as warm backups.
    pub server_recoveries: u64,
    /// Pulls/pushes parked on a fixed timer because the serving shard was
    /// down awaiting promotion (not message loss; no retry budget spent).
    pub blocked_on_failover: u64,
    /// Scheduler restarts recovered from a state snapshot (one per shard
    /// failover; tuning resumes without a cold epoch).
    pub scheduler_recoveries: u64,
}

/// The full outcome of one training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Scheme label (e.g. `"SpecSync-Adaptive"`).
    pub scheme: String,
    /// Workload name (e.g. `"CIFAR-10"`).
    pub workload: String,
    /// Number of workers.
    pub num_workers: usize,
    /// Master seed of the run.
    pub seed: u64,
    /// When the loss first satisfied the convergence criterion, if it did.
    pub converged_at: Option<VirtualTime>,
    /// Iterations (global pushes) applied at convergence, if converged.
    pub iterations_at_convergence: Option<u64>,
    /// Total iterations applied over the whole run.
    pub total_iterations: u64,
    /// Total aborted (re-synced) iterations.
    pub total_aborts: u64,
    /// Virtual compute time thrown away by aborts.
    pub wasted_compute: SimDuration,
    /// The loss curve (one point per applied push).
    pub loss_curve: LossCurve<VirtualTime>,
    /// Per-worker completed iteration counts.
    pub iterations_per_worker: Vec<u64>,
    /// Byte-level transfer accounting.
    pub transfer: TransferLedger,
    /// Scheduler counters (zero for non-speculative schemes).
    pub scheduler_stats: SchedulerStats,
    /// Hyperparameters in force per epoch (adaptive trace).
    pub hyperparams_trace: Vec<(u64, Hyperparams)>,
    /// Mean replica staleness at pull time (pushes missed per pull).
    pub mean_staleness: f64,
    /// The complete push/pull history of the run.
    pub history: PushHistory,
    /// Fault-injection and degradation counters (all-zero without a
    /// [`FaultPlan`](specsync_simnet::FaultPlan)).
    pub chaos: ChaosStats,
    /// Virtual time when the run stopped (converged or hit the horizon).
    pub finished_at: VirtualTime,
}

impl RunReport {
    /// Runtime to convergence — the paper's primary metric — or the full
    /// horizon if the run never converged.
    pub fn runtime(&self) -> VirtualTime {
        self.converged_at.unwrap_or(self.finished_at)
    }

    /// The loss at the end of the run.
    pub fn final_loss(&self) -> Option<f64> {
        self.loss_curve.final_loss()
    }

    /// The lowest loss reached at or before `t` (for fixed-budget
    /// comparisons, Fig. 11 right).
    pub fn best_loss_by(&self, t: VirtualTime) -> Option<f64> {
        self.loss_curve.best_loss_by(t)
    }

    /// Downsamples the loss curve to at most `points` evenly spaced
    /// entries (for printing).
    pub fn sampled_curve(&self, points: usize) -> Vec<LossPoint> {
        self.loss_curve.sampled(points)
    }

    /// Speedup of this run over `baseline` in runtime-to-convergence.
    /// `None` if either run failed to converge.
    pub fn speedup_over(&self, baseline: &RunReport) -> Option<f64> {
        let mine = self.converged_at?.as_secs_f64();
        let theirs = baseline.converged_at?.as_secs_f64();
        if mine <= 0.0 {
            return None;
        }
        Some(theirs / mine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(converged_secs: Option<f64>, losses: &[(f64, f64)]) -> RunReport {
        RunReport {
            scheme: "test".into(),
            workload: "tiny".into(),
            num_workers: 2,
            seed: 0,
            converged_at: converged_secs.map(VirtualTime::from_secs_f64),
            iterations_at_convergence: converged_secs.map(|_| 10),
            total_iterations: losses.len() as u64,
            total_aborts: 0,
            wasted_compute: SimDuration::ZERO,
            loss_curve: losses
                .iter()
                .enumerate()
                .map(|(i, &(t, l))| LossPoint {
                    time: VirtualTime::from_secs_f64(t),
                    iterations: i as u64 + 1,
                    loss: l,
                })
                .collect(),
            iterations_per_worker: vec![1, 1],
            transfer: TransferLedger::new(),
            scheduler_stats: SchedulerStats::default(),
            hyperparams_trace: Vec::new(),
            mean_staleness: 0.0,
            history: PushHistory::new(),
            chaos: ChaosStats::default(),
            finished_at: VirtualTime::from_secs_f64(100.0),
        }
    }

    #[test]
    fn runtime_prefers_convergence_time() {
        let r = report(Some(42.0), &[(1.0, 0.5)]);
        assert_eq!(r.runtime(), VirtualTime::from_secs_f64(42.0));
        let r2 = report(None, &[(1.0, 0.5)]);
        assert_eq!(r2.runtime(), VirtualTime::from_secs_f64(100.0));
    }

    #[test]
    fn speedup_is_baseline_over_self() {
        let fast = report(Some(10.0), &[]);
        let slow = report(Some(30.0), &[]);
        assert_eq!(fast.speedup_over(&slow), Some(3.0));
        assert_eq!(slow.speedup_over(&fast), Some(1.0 / 3.0));
        let never = report(None, &[]);
        assert_eq!(fast.speedup_over(&never), None);
    }

    #[test]
    fn best_loss_by_respects_budget() {
        let r = report(None, &[(1.0, 0.9), (2.0, 0.5), (3.0, 0.7), (4.0, 0.2)]);
        assert_eq!(r.best_loss_by(VirtualTime::from_secs_f64(2.5)), Some(0.5));
        assert_eq!(r.best_loss_by(VirtualTime::from_secs_f64(10.0)), Some(0.2));
        assert_eq!(r.best_loss_by(VirtualTime::from_secs_f64(0.5)), None);
    }

    #[test]
    fn sampled_curve_caps_length() {
        let losses: Vec<(f64, f64)> = (0..100).map(|i| (i as f64, 1.0)).collect();
        let r = report(None, &losses);
        assert!(r.sampled_curve(10).len() <= 10);
        assert_eq!(r.sampled_curve(1000).len(), 100);
    }
}
