//! The virtual-time cluster harness for SpecSync experiments.
//!
//! Reproduces the paper's EC2 testbeds as deterministic simulations:
//! instance-type profiles ([`InstanceType`]), cluster compositions
//! ([`ClusterSpec`] — including the paper's Cluster 1, Cluster 2 and the
//! scalability sizes), and the event-driven [`Driver`] that trains a real
//! model under a chosen synchronization scheme, producing a [`RunReport`]
//! with loss curves, transfer accounting, abort counts and the full
//! push/pull history.
//!
//! # Examples
//!
//! Compare ASP against SpecSync-Adaptive on a miniature workload:
//!
//! ```
//! use specsync_cluster::{ClusterSpec, InstanceType, Trainer};
//! use specsync_ml::Workload;
//! use specsync_sync::SchemeKind;
//!
//! let cluster = ClusterSpec::homogeneous(4, InstanceType::M4Xlarge);
//! let asp = Trainer::new(Workload::tiny_test(), SchemeKind::Asp)
//!     .cluster(cluster.clone())
//!     .seed(1)
//!     .run();
//! let spec = Trainer::new(Workload::tiny_test(), SchemeKind::specsync_adaptive())
//!     .cluster(cluster)
//!     .seed(1)
//!     .run();
//! assert_eq!(asp.num_workers, spec.num_workers);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod driver;
mod instance;
mod report;
mod spec;
mod trainer;

pub use driver::{Driver, DriverConfig};
pub use instance::InstanceType;
pub use report::{ChaosStats, LossPoint, RunReport};
pub use spec::ClusterSpec;
pub use trainer::Trainer;
