//! Failure-injection and edge-case tests for the cluster harness.

use specsync_cluster::{ClusterSpec, DriverConfig, InstanceType, Trainer};
use specsync_ml::{LrSchedule, Workload};
use specsync_simnet::{DurationSampler, NetworkModel, SimDuration, VirtualTime};
use specsync_sync::SchemeKind;

#[test]
fn single_worker_cluster_trains() {
    let report = Trainer::new(Workload::tiny_test(), SchemeKind::Asp)
        .cluster(ClusterSpec::homogeneous(1, InstanceType::M4Xlarge))
        .horizon(VirtualTime::from_secs(600))
        .seed(1)
        .run();
    assert!(report.total_iterations > 100);
    assert!(
        (report.mean_staleness - 1.0).abs() < 0.2,
        "solo staleness is its own push"
    );
}

#[test]
fn specsync_on_single_worker_never_aborts() {
    // One worker has no peers; the threshold (>= 1 push by others) can
    // never be met.
    let scheme = SchemeKind::specsync_fixed(SimDuration::from_millis(100), 0.0);
    let report = Trainer::new(Workload::tiny_test(), scheme)
        .cluster(ClusterSpec::homogeneous(1, InstanceType::M4Xlarge))
        .horizon(VirtualTime::from_secs(120))
        .seed(1)
        .run();
    assert_eq!(report.total_aborts, 0);
}

#[test]
fn extreme_network_latency_still_completes() {
    // Latency comparable to the iteration time: the protocol must not
    // deadlock, only slow down.
    let slow_net = NetworkModel {
        latency: DurationSampler::Constant { secs: 0.1 },
        bandwidth_bytes_per_sec: 1e6,
        spike_prob: 0.0,
        spike: DurationSampler::Constant { secs: 0.0 },
    };
    let report = Trainer::new(Workload::tiny_test(), SchemeKind::specsync_adaptive())
        .cluster(ClusterSpec::homogeneous(3, InstanceType::M4Xlarge).with_network(slow_net))
        .horizon(VirtualTime::from_secs(300))
        .seed(4)
        .run();
    assert!(
        report.total_iterations > 10,
        "training stalled under slow network"
    );
}

#[test]
fn zero_jitter_cluster_is_supported() {
    let mut workload = Workload::tiny_test();
    workload.iteration_cv = 0.0;
    let report = Trainer::new(workload, SchemeKind::Bsp)
        .cluster(ClusterSpec::homogeneous(4, InstanceType::M4Xlarge))
        .horizon(VirtualTime::from_secs(120))
        .seed(2)
        .run();
    assert!(report.total_iterations > 0);
}

#[test]
fn diverging_run_is_reported_not_crashed() {
    // An absurd learning rate makes the loss explode to NaN; the driver
    // must finish and report it rather than panic.
    let mut workload = Workload::tiny_test();
    workload.lr = LrSchedule::Constant { lr: 1e6 };
    workload.target_loss = 1e-9;
    let report = Trainer::new(workload, SchemeKind::Asp)
        .cluster(ClusterSpec::homogeneous(3, InstanceType::M4Xlarge))
        .horizon(VirtualTime::from_secs(60))
        .seed(6)
        .run();
    assert!(report.converged_at.is_none());
    assert!(
        report.loss_curve.iter().any(|p| !p.loss.is_finite()),
        "expected the loss to blow up under lr=1e6"
    );
}

#[test]
fn max_iterations_cap_is_enforced() {
    let config = DriverConfig {
        max_iterations: 50,
        max_virtual_time: VirtualTime::from_secs(100_000),
        ..DriverConfig::default()
    };
    let mut workload = Workload::tiny_test();
    workload.target_loss = 0.0;
    let report = Trainer::new(workload, SchemeKind::Asp)
        .cluster(ClusterSpec::homogeneous(2, InstanceType::M4Xlarge))
        .config(config)
        .seed(8)
        .run();
    assert!(
        report.total_iterations <= 51,
        "cap exceeded: {}",
        report.total_iterations
    );
}

#[test]
fn gradient_clipping_keeps_divergent_lr_finite() {
    let mut workload = Workload::tiny_test();
    workload.lr = LrSchedule::Constant { lr: 50.0 };
    workload.grad_clip = Some(0.01);
    workload.target_loss = 0.0;
    let report = Trainer::new(workload, SchemeKind::Asp)
        .cluster(ClusterSpec::homogeneous(3, InstanceType::M4Xlarge))
        .horizon(VirtualTime::from_secs(60))
        .seed(6)
        .run();
    // With a tight clip the update norm is bounded; loss may be bad but
    // must stay finite.
    assert!(
        report.loss_curve.iter().all(|p| p.loss.is_finite()),
        "clipped run produced NaN"
    );
}

#[test]
fn instant_network_matches_protocol_expectations() {
    // With zero latency and infinite bandwidth, iteration time is pure
    // compute; the mean iteration interval should be close to the
    // workload's configured mean.
    let mut workload = Workload::tiny_test();
    workload.target_loss = 0.0;
    let mean = workload.mean_iteration_secs;
    let report = Trainer::new(workload, SchemeKind::Asp)
        .cluster(
            ClusterSpec::homogeneous(1, InstanceType::M4Xlarge)
                .with_network(NetworkModel::instant()),
        )
        .horizon(VirtualTime::from_secs(100))
        .seed(5)
        .run();
    let measured = report.finished_at.as_secs_f64() / report.total_iterations as f64;
    assert!(
        (measured - mean).abs() < mean * 0.2,
        "iteration interval {measured} too far from configured {mean}"
    );
}
