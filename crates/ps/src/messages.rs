//! Wire-size model for PS traffic.
//!
//! The experiment harness accounts transfer volume at the *paper's* model
//! scale (millions of parameters, 4 bytes each), even though the trained
//! model is smaller — this keeps Fig. 12/13 magnitudes comparable to the
//! paper's TB-scale numbers. Control messages (`notify`/`re-sync`) carry a
//! sender id and a timestamp, "a short list of numbers" per §V-B.

use serde::{Deserialize, Serialize};

use specsync_simnet::MessageClass;

/// Byte sizes of each PS message class for one workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MessageSizes {
    /// Bytes for one full parameter pull.
    pub pull_bytes: u64,
    /// Bytes for one gradient push (same dimensionality as a pull).
    pub push_bytes: u64,
    /// Bytes for a `notify` control message.
    pub notify_bytes: u64,
    /// Bytes for a `re-sync` control message.
    pub resync_bytes: u64,
    /// Bytes for other control traffic.
    pub control_bytes: u64,
}

impl MessageSizes {
    /// Sizes for a model of `num_parameters` parameters at 4 bytes each,
    /// with 16-byte control messages (id + timestamp).
    pub fn for_model(num_parameters: u64) -> Self {
        MessageSizes {
            pull_bytes: num_parameters * 4,
            push_bytes: num_parameters * 4,
            notify_bytes: 16,
            resync_bytes: 16,
            control_bytes: 16,
        }
    }

    /// The byte size of a message of the given class.
    pub fn bytes_for(&self, class: MessageClass) -> u64 {
        match class {
            MessageClass::PullParams => self.pull_bytes,
            MessageClass::PushGrad => self.push_bytes,
            MessageClass::Notify => self.notify_bytes,
            MessageClass::Resync => self.resync_bytes,
            MessageClass::Control => self.control_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_sizes_scale_with_parameter_count() {
        let s = MessageSizes::for_model(2_500_000);
        assert_eq!(s.pull_bytes, 10_000_000);
        assert_eq!(s.push_bytes, 10_000_000);
        assert_eq!(s.notify_bytes, 16);
    }

    #[test]
    fn bytes_for_covers_every_class() {
        let s = MessageSizes::for_model(100);
        for class in MessageClass::ALL {
            assert!(s.bytes_for(class) > 0);
        }
        assert_eq!(s.bytes_for(MessageClass::PullParams), 400);
        assert_eq!(s.bytes_for(MessageClass::Resync), 16);
    }
}
