//! Bounded write-ahead journal of applied pushes.
//!
//! Every push a [`ReplicatedStore`](crate::ReplicatedStore) accepts is
//! journaled *before* it is applied to the primary, tagged with the global
//! sequence number it will hold. The warm backup trails the primary by at
//! most the journal capacity: when the journal fills, the replica layer
//! drains it into the backup (synchronous catch-up) before accepting the
//! next push. Failover replays exactly the journal suffix the backup has
//! not seen — each sequence number is applied to the backup once, ever.

use specsync_simnet::WorkerId;
use specsync_tensor::SparseGrad;
use std::collections::VecDeque;

/// The gradient payload of one journaled push.
#[derive(Debug, Clone, PartialEq)]
pub enum PushPayload {
    /// A full dense gradient.
    Dense(Vec<f32>),
    /// A sparse gradient (replayed through the sparse path so lazy
    /// momentum bookkeeping matches the primary bit-for-bit).
    Sparse(SparseGrad),
}

/// One applied push, as recorded in the journal.
#[derive(Debug, Clone)]
pub struct JournalEntry {
    /// Global sequence number: the store version this push produced.
    pub seq: u64,
    /// The pushing worker.
    pub worker: WorkerId,
    /// The gradient.
    pub payload: PushPayload,
    /// The learning rate the push was applied with.
    pub lr: f32,
}

/// The journal is at capacity; the backup must catch up before another
/// entry can be written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalFull {
    /// The configured capacity that was hit.
    pub capacity: usize,
}

impl std::fmt::Display for JournalFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "push journal full at capacity {}: backup must catch up",
            self.capacity
        )
    }
}

impl std::error::Error for JournalFull {}

/// A bounded FIFO of journaled pushes with monotone sequence numbers.
#[derive(Debug, Clone)]
pub struct PushJournal {
    entries: VecDeque<JournalEntry>,
    capacity: usize,
}

impl PushJournal {
    /// Creates an empty journal holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` (a zero-lag journal cannot accept the
    /// push it is supposed to protect).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "journal capacity must be positive");
        PushJournal {
            entries: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of journaled entries not yet truncated.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is outstanding.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True if the next append would be refused.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Appends an entry.
    ///
    /// # Errors
    ///
    /// Returns [`JournalFull`] when at capacity; the caller drains into the
    /// backup (see [`truncate_through`](Self::truncate_through)) and
    /// retries.
    ///
    /// # Panics
    ///
    /// Panics (debug only) if `entry.seq` does not extend the journal
    /// monotonically.
    pub fn try_append(&mut self, entry: JournalEntry) -> Result<(), JournalFull> {
        if self.is_full() {
            return Err(JournalFull {
                capacity: self.capacity,
            });
        }
        debug_assert!(
            self.entries.back().is_none_or(|last| last.seq < entry.seq),
            "journal sequence numbers must be strictly increasing"
        );
        self.entries.push_back(entry);
        Ok(())
    }

    /// Drops every entry with `seq <= through` (they are durable on the
    /// backup). Truncation is idempotent: re-acknowledging an old sequence
    /// number removes nothing.
    pub fn truncate_through(&mut self, through: u64) {
        while self.entries.front().is_some_and(|e| e.seq <= through) {
            self.entries.pop_front();
        }
    }

    /// The outstanding entries with `seq > after`, oldest first.
    pub fn entries_after(&self, after: u64) -> impl Iterator<Item = &JournalEntry> {
        self.entries.iter().filter(move |e| e.seq > after)
    }

    /// Sequence number of the newest journaled entry, if any.
    pub fn last_seq(&self) -> Option<u64> {
        self.entries.back().map(|e| e.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(seq: u64) -> JournalEntry {
        JournalEntry {
            seq,
            worker: WorkerId::new(0),
            payload: PushPayload::Dense(vec![1.0]),
            lr: 0.1,
        }
    }

    #[test]
    fn append_is_bounded_and_fifo() {
        let mut j = PushJournal::new(2);
        j.try_append(entry(1)).unwrap();
        j.try_append(entry(2)).unwrap();
        assert_eq!(j.try_append(entry(3)), Err(JournalFull { capacity: 2 }));
        assert!(j.is_full());
        let seqs: Vec<u64> = j.entries_after(0).map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2]);
    }

    #[test]
    fn truncation_is_idempotent_and_frees_capacity() {
        let mut j = PushJournal::new(2);
        j.try_append(entry(1)).unwrap();
        j.try_append(entry(2)).unwrap();
        j.truncate_through(1);
        j.truncate_through(1);
        assert_eq!(j.len(), 1);
        j.try_append(entry(3)).unwrap();
        let seqs: Vec<u64> = j.entries_after(1).map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3]);
        assert_eq!(j.last_seq(), Some(3));
    }

    #[test]
    fn entries_after_skips_already_applied_seqs() {
        let mut j = PushJournal::new(4);
        for s in 1..=4 {
            j.try_append(entry(s)).unwrap();
        }
        let seqs: Vec<u64> = j.entries_after(2).map(|e| e.seq).collect();
        assert_eq!(seqs, vec![3, 4]);
    }

    #[test]
    #[should_panic(expected = "journal capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = PushJournal::new(0);
    }
}
