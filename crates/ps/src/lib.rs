//! Parameter-server substrate for the SpecSync reproduction.
//!
//! Implements the server side of the PS architecture the paper builds on
//! (Fig. 1): a sharded, versioned [`ParameterStore`] with asynchronous
//! push/pull semantics matching MXNet's `dist_async` kvstore. (The
//! wire-size model used for transfer accounting lives with the rest of
//! the wire vocabulary in `specsync-net`.)
//!
//! The store is deliberately *policy-free*: ASP/BSP/SSP/SpecSync behaviour
//! is decided by the scheme and scheduler layers (`specsync-sync`,
//! `specsync-core`); servers "are agnostic to speculative synchronization"
//! (paper §V-B).
//!
//! # Examples
//!
//! ```
//! use specsync_ps::ParameterStore;
//! use specsync_simnet::WorkerId;
//!
//! let mut store = ParameterStore::new(vec![0.0; 4], 2);
//! let snapshot = store.pull(WorkerId::new(0));
//! store.apply_push(WorkerId::new(1), &[1.0, 1.0, 1.0, 1.0], 0.1);
//! assert_eq!(store.staleness_of(WorkerId::new(0)), 1);
//! assert_eq!(snapshot.version(), 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod checkpoint;
mod journal;
mod replica;
mod sharding;
mod store;

pub use checkpoint::{CheckpointError, StoreCheckpoint};
pub use journal::{JournalEntry, JournalFull, PushJournal, PushPayload};
pub use replica::{ReplicaError, ReplicaRole, ReplicatedStore, ShardReplica};
pub use sharding::{ShardId, ShardLayout, ShardLayoutError};
pub use store::{ParamSnapshot, ParameterStore};
