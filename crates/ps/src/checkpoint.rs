//! Crash-consistent checkpointing of the parameter store.
//!
//! A [`StoreCheckpoint`] is a settled copy of everything a
//! [`ParameterStore`](crate::ParameterStore) needs to resume exactly where
//! it left off: parameters, optimizer state (momentum velocity), version
//! counters and per-worker bookkeeping. The binary codec is versioned and
//! checksummed so a torn or bit-rotted file is a typed
//! [`CheckpointError`], never a panic and never silently wrong state.
//!
//! Wire format (all integers little-endian):
//!
//! ```text
//! magic "SSCP" | format u32 | checksum u64 (FNV-1a over payload) | payload
//! ```
//!
//! The payload is a fixed field order — no self-describing keys — because
//! both ends are this module; the format version gates layout changes.

/// Magic prefix identifying a SpecSync checkpoint blob.
const MAGIC: [u8; 4] = *b"SSCP";

/// Current codec format version.
const FORMAT: u32 = 1;

/// A malformed or corrupted checkpoint blob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointError {
    /// The blob does not start with the checkpoint magic bytes.
    BadMagic,
    /// The blob was written by an unknown (newer) codec version.
    UnsupportedFormat(u32),
    /// The blob ends before the announced payload does.
    Truncated,
    /// The payload checksum does not match the header.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum computed over the payload actually read.
        actual: u64,
    },
    /// The payload decoded but violates a store invariant.
    Malformed(&'static str),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "checkpoint: bad magic bytes"),
            CheckpointError::UnsupportedFormat(v) => {
                write!(f, "checkpoint: unsupported format version {v}")
            }
            CheckpointError::Truncated => write!(f, "checkpoint: truncated blob"),
            CheckpointError::ChecksumMismatch { expected, actual } => write!(
                f,
                "checkpoint: checksum mismatch (header {expected:#018x}, payload {actual:#018x})"
            ),
            CheckpointError::Malformed(what) => write!(f, "checkpoint: malformed payload: {what}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// A settled, self-contained snapshot of a parameter store.
///
/// Obtain one with
/// [`ParameterStore::snapshot_for_checkpoint`](crate::ParameterStore::snapshot_for_checkpoint),
/// serialize with [`encode`](StoreCheckpoint::encode), and bring a store
/// back with [`ParameterStore::restore`](crate::ParameterStore::restore).
#[derive(Debug, Clone, PartialEq)]
pub struct StoreCheckpoint {
    pub(crate) params: Vec<f32>,
    pub(crate) num_shards: usize,
    pub(crate) version: u64,
    pub(crate) pushes_per_worker: Vec<u64>,
    pub(crate) last_pull_version: Vec<u64>,
    pub(crate) momentum: f32,
    pub(crate) velocity: Vec<f32>,
    pub(crate) grad_clip: Option<f32>,
}

impl StoreCheckpoint {
    /// The global version (total pushes) captured by this checkpoint.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of parameters captured.
    pub fn num_params(&self) -> usize {
        self.params.len()
    }

    /// Serializes the checkpoint into the versioned, checksummed format.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(64 + self.params.len() * 4);
        put_u64(&mut payload, self.num_shards as u64);
        put_u64(&mut payload, self.version);
        put_f32(&mut payload, self.momentum);
        match self.grad_clip {
            Some(clip) => {
                payload.push(1);
                put_f32(&mut payload, clip);
            }
            None => payload.push(0),
        }
        put_f32_slice(&mut payload, &self.params);
        put_f32_slice(&mut payload, &self.velocity);
        put_u64_slice(&mut payload, &self.pushes_per_worker);
        put_u64_slice(&mut payload, &self.last_pull_version);

        let mut out = Vec::with_capacity(16 + payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT.to_le_bytes());
        out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Deserializes a checkpoint, verifying magic, format, checksum and
    /// every store invariant.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] describing the first defect found; a
    /// corrupted blob never panics and never yields a checkpoint.
    pub fn decode(bytes: &[u8]) -> Result<Self, CheckpointError> {
        if bytes.len() < 16 {
            return Err(if bytes.len() >= 4 && bytes[..4] != MAGIC {
                CheckpointError::BadMagic
            } else if bytes.len() >= 4 {
                CheckpointError::Truncated
            } else {
                CheckpointError::BadMagic
            });
        }
        if bytes[..4] != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let format = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        if format != FORMAT {
            return Err(CheckpointError::UnsupportedFormat(format));
        }
        let expected = u64::from_le_bytes([
            bytes[8], bytes[9], bytes[10], bytes[11], bytes[12], bytes[13], bytes[14], bytes[15],
        ]);
        let payload = &bytes[16..];
        let actual = fnv1a(payload);
        if actual != expected {
            return Err(CheckpointError::ChecksumMismatch { expected, actual });
        }

        let mut r = Reader { buf: payload };
        let num_shards = r.u64()? as usize;
        let version = r.u64()?;
        let momentum = r.f32()?;
        let grad_clip = match r.u8()? {
            0 => None,
            1 => Some(r.f32()?),
            _ => return Err(CheckpointError::Malformed("bad grad-clip tag")),
        };
        let params = r.f32_slice()?;
        let velocity = r.f32_slice()?;
        let pushes_per_worker = r.u64_slice()?;
        let last_pull_version = r.u64_slice()?;
        if !r.buf.is_empty() {
            return Err(CheckpointError::Malformed("trailing bytes after payload"));
        }

        let ckpt = StoreCheckpoint {
            params,
            num_shards,
            version,
            pushes_per_worker,
            last_pull_version,
            momentum,
            velocity,
            grad_clip,
        };
        ckpt.validate()?;
        Ok(ckpt)
    }

    /// Checks every invariant [`ParameterStore::restore`] relies on.
    ///
    /// [`ParameterStore::restore`]: crate::ParameterStore::restore
    pub(crate) fn validate(&self) -> Result<(), CheckpointError> {
        if self.params.is_empty() {
            return Err(CheckpointError::Malformed("empty parameter vector"));
        }
        if self.num_shards == 0 || self.num_shards > self.params.len() {
            return Err(CheckpointError::Malformed("shard count out of range"));
        }
        if !(self.momentum.is_finite() && (0.0..1.0).contains(&self.momentum)) {
            return Err(CheckpointError::Malformed("momentum outside [0, 1)"));
        }
        if let Some(clip) = self.grad_clip {
            if !(clip.is_finite() && clip > 0.0) {
                return Err(CheckpointError::Malformed("non-positive clip norm"));
            }
        }
        let want_velocity = if self.momentum > 0.0 {
            self.params.len()
        } else {
            0
        };
        if self.velocity.len() != want_velocity {
            return Err(CheckpointError::Malformed("velocity length mismatch"));
        }
        if self.pushes_per_worker.len() != self.last_pull_version.len() {
            return Err(CheckpointError::Malformed("worker table length mismatch"));
        }
        if self.pushes_per_worker.iter().sum::<u64>() != self.version {
            return Err(CheckpointError::Malformed(
                "per-worker pushes do not sum to the version",
            ));
        }
        if self.last_pull_version.iter().any(|&v| v > self.version) {
            return Err(CheckpointError::Malformed("pull version from the future"));
        }
        Ok(())
    }
}

/// 64-bit FNV-1a over the payload. Hand-rolled: the workspace vendors no
/// hashing crate and the checkpoint only needs corruption *detection*, not
/// collision resistance.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Floats travel as raw bits so every value — including NaN payloads and
/// signed zeros — round-trips exactly.
fn put_f32(out: &mut Vec<u8>, v: f32) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_f32_slice(out: &mut Vec<u8>, vs: &[f32]) {
    put_u64(out, vs.len() as u64);
    for &v in vs {
        put_f32(out, v);
    }
}

fn put_u64_slice(out: &mut Vec<u8>, vs: &[u64]) {
    put_u64(out, vs.len() as u64);
    for &v in vs {
        put_u64(out, v);
    }
}

/// A bounds-checked little-endian reader over the payload.
struct Reader<'a> {
    buf: &'a [u8],
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], CheckpointError> {
        if self.buf.len() < n {
            return Err(CheckpointError::Truncated);
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f32(&mut self) -> Result<f32, CheckpointError> {
        let b = self.take(4)?;
        Ok(f32::from_bits(u32::from_le_bytes([b[0], b[1], b[2], b[3]])))
    }

    fn len_prefix(&mut self, elem_size: usize) -> Result<usize, CheckpointError> {
        let len = self.u64()?;
        // Reject lengths the remaining buffer cannot possibly hold before
        // allocating, so a corrupted length is `Truncated`, not an OOM.
        let len = usize::try_from(len).map_err(|_| CheckpointError::Truncated)?;
        match len.checked_mul(elem_size) {
            Some(n) if n <= self.buf.len() => {}
            _ => return Err(CheckpointError::Truncated),
        }
        Ok(len)
    }

    fn f32_slice(&mut self) -> Result<Vec<f32>, CheckpointError> {
        let len = self.len_prefix(4)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.f32()?);
        }
        Ok(out)
    }

    fn u64_slice(&mut self) -> Result<Vec<u64>, CheckpointError> {
        let len = self.len_prefix(8)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.u64()?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ParameterStore;
    use specsync_simnet::WorkerId;

    fn busy_store() -> ParameterStore {
        let mut s = ParameterStore::new(vec![0.5; 8], 4)
            .with_momentum(0.9)
            .with_grad_clip(2.0);
        for i in 0..5 {
            s.apply_push(WorkerId::new(i % 3), &[0.1 * (i as f32 + 1.0); 8], 0.05);
            s.pull(WorkerId::new(i % 2));
        }
        s
    }

    #[test]
    fn encode_decode_is_identity() {
        let ckpt = busy_store().snapshot_for_checkpoint();
        let decoded = StoreCheckpoint::decode(&ckpt.encode()).expect("round trip");
        assert_eq!(decoded, ckpt);
    }

    #[test]
    fn restore_resumes_bit_identically() {
        let mut original = busy_store();
        let ckpt = original.snapshot_for_checkpoint();
        let mut restored = ParameterStore::restore(ckpt).expect("valid checkpoint");
        // The restored store continues exactly where the original would.
        for i in 0..4 {
            let g = vec![0.01 * (i as f32 + 1.0); 8];
            original.apply_push(WorkerId::new(i), &g, 0.05);
            restored.apply_push(WorkerId::new(i), &g, 0.05);
        }
        assert_eq!(original.params(), restored.params());
        assert_eq!(original.version(), restored.version());
        assert_eq!(
            original.staleness_of(WorkerId::new(0)),
            restored.staleness_of(WorkerId::new(0))
        );
    }

    #[test]
    fn corrupted_bytes_are_typed_errors_never_panics() {
        let bytes = busy_store().snapshot_for_checkpoint().encode();
        // Flip every byte position in turn: each corruption must surface as
        // an Err, never a panic, and never decode to the original.
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0xff;
            if let Ok(ckpt) = StoreCheckpoint::decode(&bad) {
                // Only reachable if the flip cancelled out — impossible
                // for a single XOR — so any Ok must equal the original.
                assert_eq!(ckpt.encode(), bytes, "byte {i} decoded corrupt state");
            }
        }
    }

    #[test]
    fn checksum_mismatch_is_reported_as_such() {
        let mut bytes = busy_store().snapshot_for_checkpoint().encode();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(matches!(
            StoreCheckpoint::decode(&bytes),
            Err(CheckpointError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncation_magic_and_format_errors() {
        let bytes = busy_store().snapshot_for_checkpoint().encode();
        assert_eq!(
            StoreCheckpoint::decode(&bytes[..bytes.len() - 3]),
            Err(CheckpointError::ChecksumMismatch {
                expected: u64::from_le_bytes(bytes[8..16].try_into().unwrap()),
                actual: fnv1a(&bytes[16..bytes.len() - 3]),
            })
        );
        assert_eq!(
            StoreCheckpoint::decode(b"nope"),
            Err(CheckpointError::BadMagic)
        );
        let mut wrong_format = bytes.clone();
        wrong_format[4] = 0xee;
        assert!(matches!(
            StoreCheckpoint::decode(&wrong_format),
            Err(CheckpointError::UnsupportedFormat(_))
        ));
        assert_eq!(StoreCheckpoint::decode(&[]), Err(CheckpointError::BadMagic));
    }

    #[test]
    fn lazy_momentum_state_is_settled_before_capture() {
        use specsync_tensor::SparseGrad;
        let mut s = ParameterStore::new(vec![0.0; 4], 2).with_momentum(0.8);
        let mut g = SparseGrad::new();
        g.reset(4);
        g.add(1, 1.0);
        g.finish();
        s.apply_push_sparse(WorkerId::new(0), &g, 0.1);
        s.apply_push_sparse(WorkerId::new(0), &g, 0.1);
        let ckpt = s.snapshot_for_checkpoint();
        let mut restored = ParameterStore::restore(ckpt).expect("valid");
        assert_eq!(s.params(), restored.params());
    }
}
