//! The sharded, versioned parameter store.
//!
//! Semantics follow MXNet's `dist_async` kvstore, the substrate the paper
//! builds on (§V): pushes are gradient contributions applied to the global
//! parameters in arrival order; pulls return a snapshot of the current
//! global view. There are no barriers in the store itself — synchronization
//! policy lives entirely in the scheme/scheduler layer.

use specsync_simnet::WorkerId;

use crate::sharding::ShardLayout;

/// A consistent snapshot of the global parameters, as returned by a pull.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSnapshot {
    params: Vec<f32>,
    version: u64,
}

impl ParamSnapshot {
    /// The parameter values.
    pub fn params(&self) -> &[f32] {
        &self.params
    }

    /// The global version (total pushes applied) at snapshot time.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Consumes the snapshot, returning the parameter vector.
    pub fn into_params(self) -> Vec<f32> {
        self.params
    }
}

/// The server-side global parameter state.
///
/// # Examples
///
/// ```
/// use specsync_ps::ParameterStore;
/// use specsync_simnet::WorkerId;
///
/// let mut store = ParameterStore::new(vec![1.0, 1.0], 1);
/// store.apply_push(WorkerId::new(0), &[0.5, 0.0], 1.0);
/// let snap = store.pull(WorkerId::new(0));
/// assert_eq!(snap.params(), &[0.5, 1.0]);
/// assert_eq!(snap.version(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ParameterStore {
    params: Vec<f32>,
    layout: ShardLayout,
    version: u64,
    pushes_per_worker: Vec<u64>,
    last_pull_version: Vec<u64>,
    momentum: f32,
    velocity: Vec<f32>,
    grad_clip: Option<f32>,
}

impl ParameterStore {
    /// Creates a store holding `initial` parameters split into `num_shards`
    /// server shards, applying plain SGD updates.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is empty or `num_shards == 0`.
    pub fn new(initial: Vec<f32>, num_shards: usize) -> Self {
        assert!(!initial.is_empty(), "parameter vector cannot be empty");
        let layout = ShardLayout::new(initial.len(), num_shards);
        ParameterStore {
            params: initial,
            layout,
            version: 0,
            pushes_per_worker: Vec::new(),
            last_pull_version: Vec::new(),
            momentum: 0.0,
            velocity: Vec::new(),
            grad_clip: None,
        }
    }

    /// Enables server-side gradient clipping: a pushed gradient whose L2
    /// norm exceeds `max_norm` is rescaled to that norm before applying
    /// (MXNet's `clip_gradient` optimizer option).
    ///
    /// # Panics
    ///
    /// Panics if `max_norm` is not positive and finite.
    pub fn with_grad_clip(mut self, max_norm: f32) -> Self {
        assert!(max_norm.is_finite() && max_norm > 0.0, "clip norm must be positive and finite");
        self.grad_clip = Some(max_norm);
        self
    }

    /// Enables server-side Polyak momentum: each push applies
    /// `v ← β·v + g; w ← w − lr·v` (MXNet's `sgd` optimizer with
    /// `momentum = β`, the update rule the paper's ResNet/MF workloads
    /// train with).
    ///
    /// # Panics
    ///
    /// Panics if `beta` is not in `[0, 1)`.
    pub fn with_momentum(mut self, beta: f32) -> Self {
        assert!((0.0..1.0).contains(&beta), "momentum must be in [0, 1)");
        self.momentum = beta;
        if beta > 0.0 {
            self.velocity = vec![0.0; self.params.len()];
        }
        self
    }

    /// Number of parameters.
    pub fn num_params(&self) -> usize {
        self.params.len()
    }

    /// The shard layout.
    pub fn layout(&self) -> &ShardLayout {
        &self.layout
    }

    /// Global version: total number of pushes applied so far.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Current global parameters (server-side view, no copy).
    pub fn params(&self) -> &[f32] {
        &self.params
    }

    fn ensure_worker(&mut self, worker: WorkerId) {
        let need = worker.index() + 1;
        if self.pushes_per_worker.len() < need {
            self.pushes_per_worker.resize(need, 0);
            self.last_pull_version.resize(need, 0);
        }
    }

    /// Applies a gradient push from `worker`: `w -= lr * grad`, applied
    /// atomically across all shards in arrival order. Returns the new
    /// global version.
    ///
    /// # Panics
    ///
    /// Panics if `grad.len()` differs from the parameter count or `lr` is
    /// not finite.
    pub fn apply_push(&mut self, worker: WorkerId, grad: &[f32], lr: f32) -> u64 {
        assert_eq!(grad.len(), self.params.len(), "gradient length mismatch");
        assert!(lr.is_finite(), "learning rate must be finite");
        self.ensure_worker(worker);
        // Apply clipping as a scale factor so the (possibly large) gradient
        // buffer is never copied.
        let scale = match self.grad_clip {
            Some(max_norm) => {
                let norm = grad.iter().map(|g| g * g).sum::<f32>().sqrt();
                if norm > max_norm {
                    max_norm / norm
                } else {
                    1.0
                }
            }
            None => 1.0,
        };
        if self.momentum > 0.0 {
            let beta = self.momentum;
            for ((p, v), g) in self.params.iter_mut().zip(&mut self.velocity).zip(grad) {
                *v = beta * *v + g * scale;
                *p -= lr * *v;
            }
        } else {
            for (p, g) in self.params.iter_mut().zip(grad) {
                *p -= lr * g * scale;
            }
        }
        self.version += 1;
        self.pushes_per_worker[worker.index()] += 1;
        self.version
    }

    /// Serves a pull from `worker`: snapshots the current parameters and
    /// records the version the worker now holds (the basis for staleness
    /// accounting).
    pub fn pull(&mut self, worker: WorkerId) -> ParamSnapshot {
        self.ensure_worker(worker);
        self.last_pull_version[worker.index()] = self.version;
        ParamSnapshot { params: self.params.clone(), version: self.version }
    }

    /// How many pushes `worker` has applied.
    pub fn pushes_by(&self, worker: WorkerId) -> u64 {
        self.pushes_per_worker.get(worker.index()).copied().unwrap_or(0)
    }

    /// The staleness of `worker`'s replica: pushes applied globally since
    /// its last pull (the "missing updates" of paper §II-C).
    pub fn staleness_of(&self, worker: WorkerId) -> u64 {
        let pulled = self.last_pull_version.get(worker.index()).copied().unwrap_or(0);
        self.version - pulled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(i: usize) -> WorkerId {
        WorkerId::new(i)
    }

    #[test]
    fn push_applies_scaled_gradient() {
        let mut s = ParameterStore::new(vec![1.0, 2.0, 3.0], 2);
        s.apply_push(w(0), &[1.0, 0.0, -1.0], 0.5);
        assert_eq!(s.params(), &[0.5, 2.0, 3.5]);
        assert_eq!(s.version(), 1);
    }

    #[test]
    fn pushes_compose_in_arrival_order() {
        let mut s = ParameterStore::new(vec![0.0], 1);
        s.apply_push(w(0), &[1.0], 1.0);
        s.apply_push(w(1), &[1.0], 0.5);
        assert_eq!(s.params(), &[-1.5]);
        assert_eq!(s.version(), 2);
        assert_eq!(s.pushes_by(w(0)), 1);
        assert_eq!(s.pushes_by(w(1)), 1);
    }

    #[test]
    fn pull_snapshots_are_isolated_from_later_pushes() {
        let mut s = ParameterStore::new(vec![0.0], 1);
        let snap = s.pull(w(0));
        s.apply_push(w(1), &[1.0], 1.0);
        assert_eq!(snap.params(), &[0.0]);
        assert_eq!(snap.version(), 0);
        assert_eq!(s.pull(w(1)).params(), &[-1.0]);
    }

    #[test]
    fn staleness_counts_pushes_since_last_pull() {
        let mut s = ParameterStore::new(vec![0.0], 1);
        s.pull(w(0));
        assert_eq!(s.staleness_of(w(0)), 0);
        s.apply_push(w(1), &[1.0], 1.0);
        s.apply_push(w(2), &[1.0], 1.0);
        assert_eq!(s.staleness_of(w(0)), 2);
        s.pull(w(0));
        assert_eq!(s.staleness_of(w(0)), 0);
    }

    #[test]
    fn staleness_of_never_pulled_worker_counts_all_pushes() {
        let mut s = ParameterStore::new(vec![0.0], 1);
        s.apply_push(w(0), &[1.0], 1.0);
        assert_eq!(s.staleness_of(w(5)), 1);
    }

    #[test]
    #[should_panic(expected = "gradient length mismatch")]
    fn mismatched_gradient_panics() {
        let mut s = ParameterStore::new(vec![0.0, 0.0], 1);
        s.apply_push(w(0), &[1.0], 1.0);
    }

    #[test]
    fn grad_clip_rescales_large_pushes() {
        let mut s = ParameterStore::new(vec![0.0, 0.0], 1).with_grad_clip(1.0);
        // Norm 5 gradient clipped to norm 1: (3,4)/5 = (0.6, 0.8).
        s.apply_push(w(0), &[3.0, 4.0], 1.0);
        assert!((s.params()[0] + 0.6).abs() < 1e-6);
        assert!((s.params()[1] + 0.8).abs() < 1e-6);
        // Small gradients pass through unchanged.
        s.apply_push(w(0), &[0.1, 0.0], 1.0);
        assert!((s.params()[0] + 0.7).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "clip norm must be positive")]
    fn zero_clip_panics() {
        let _ = ParameterStore::new(vec![0.0], 1).with_grad_clip(0.0);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut s = ParameterStore::new(vec![0.0], 1).with_momentum(0.5);
        s.apply_push(w(0), &[1.0], 1.0);
        // v = 1.0, w = -1.0
        assert_eq!(s.params(), &[-1.0]);
        s.apply_push(w(0), &[1.0], 1.0);
        // v = 1.5, w = -2.5
        assert_eq!(s.params(), &[-2.5]);
    }

    #[test]
    fn zero_momentum_matches_plain_sgd() {
        let mut a = ParameterStore::new(vec![0.0], 1);
        let mut b = ParameterStore::new(vec![0.0], 1).with_momentum(0.0);
        a.apply_push(w(0), &[2.0], 0.5);
        b.apply_push(w(0), &[2.0], 0.5);
        assert_eq!(a.params(), b.params());
    }

    #[test]
    #[should_panic(expected = "momentum must be in [0, 1)")]
    fn invalid_momentum_panics() {
        let _ = ParameterStore::new(vec![0.0], 1).with_momentum(1.0);
    }

    #[test]
    fn snapshot_into_params_round_trips() {
        let mut s = ParameterStore::new(vec![7.0], 1);
        assert_eq!(s.pull(w(0)).into_params(), vec![7.0]);
    }
}
