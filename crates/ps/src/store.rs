//! The sharded, versioned parameter store.
//!
//! Semantics follow MXNet's `dist_async` kvstore, the substrate the paper
//! builds on (§V): pushes are gradient contributions applied to the global
//! parameters in arrival order; pulls return a snapshot of the current
//! global view. There are no barriers in the store itself — synchronization
//! policy lives entirely in the scheme/scheduler layer.

use std::sync::Arc;

use specsync_simnet::WorkerId;
use specsync_tensor::SparseGrad;

use crate::checkpoint::{CheckpointError, StoreCheckpoint};
use crate::sharding::ShardLayout;

/// A consistent snapshot of the global parameters, as returned by a pull.
///
/// The parameter block is immutable and reference-counted: every pull
/// served between two pushes hands out the same allocation, so N workers
/// pulling an unchanged store share one buffer instead of owning N copies.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSnapshot {
    params: Arc<[f32]>,
    version: u64,
}

impl ParamSnapshot {
    /// The parameter values.
    pub fn params(&self) -> &[f32] {
        &self.params
    }

    /// The global version (total pushes applied) at snapshot time.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The shared parameter block (no copy).
    pub fn shared(&self) -> Arc<[f32]> {
        Arc::clone(&self.params)
    }

    /// Consumes the snapshot, returning the shared parameter block without
    /// copying.
    pub fn into_shared(self) -> Arc<[f32]> {
        self.params
    }

    /// Consumes the snapshot, returning an owned parameter vector (copies
    /// unless this is the block's only reference).
    pub fn into_params(self) -> Vec<f32> {
        self.params.to_vec()
    }
}

/// The server-side global parameter state.
///
/// # Examples
///
/// ```
/// use specsync_ps::ParameterStore;
/// use specsync_simnet::WorkerId;
///
/// let mut store = ParameterStore::new(vec![1.0, 1.0], 1);
/// store.apply_push(WorkerId::new(0), &[0.5, 0.0], 1.0);
/// let snap = store.pull(WorkerId::new(0));
/// assert_eq!(snap.params(), &[0.5, 1.0]);
/// assert_eq!(snap.version(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ParameterStore {
    params: Vec<f32>,
    layout: ShardLayout,
    version: u64,
    pushes_per_worker: Vec<u64>,
    last_pull_version: Vec<u64>,
    momentum: f32,
    velocity: Vec<f32>,
    grad_clip: Option<f32>,
    /// Cached immutable snapshot served to pulls; dropped lazily on the
    /// next push so it is rebuilt at most once per version.
    snapshot: Option<Arc<[f32]>>,
    /// Per-coordinate version up to which `params`/`velocity` are
    /// materialized (momentum only). A sparse push leaves untouched
    /// coordinates behind the global version; their pending
    /// `v ← β·v; w ← w − lr·v` decay steps are replayed on demand.
    last_sync: Vec<u64>,
    /// The learning rate of all pending decay steps. Sparse pushes with a
    /// different lr (and dense pushes, and snapshot rebuilds) first flush
    /// every coordinate to the current version.
    lazy_lr: f32,
    /// Whether any coordinate may be behind the global version. Keeps
    /// flushes O(1) when nothing was deferred (fresh stores, dense-only
    /// histories).
    lazy_behind: bool,
}

impl ParameterStore {
    /// Creates a store holding `initial` parameters split into `num_shards`
    /// server shards, applying plain SGD updates.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is empty or `num_shards == 0`.
    pub fn new(initial: Vec<f32>, num_shards: usize) -> Self {
        assert!(!initial.is_empty(), "parameter vector cannot be empty");
        assert!(num_shards > 0, "need at least one shard");
        // Tiny models can have fewer parameters than the cluster has server
        // shards; clamp explicitly so every shard owns at least one
        // parameter ([`ShardLayout::try_new`] rejects empty ranges).
        let layout = ShardLayout::new(initial.len(), num_shards.min(initial.len()));
        ParameterStore {
            params: initial,
            layout,
            version: 0,
            pushes_per_worker: Vec::new(),
            last_pull_version: Vec::new(),
            momentum: 0.0,
            velocity: Vec::new(),
            grad_clip: None,
            snapshot: None,
            last_sync: Vec::new(),
            lazy_lr: 0.0,
            lazy_behind: false,
        }
    }

    /// Enables server-side gradient clipping: a pushed gradient whose L2
    /// norm exceeds `max_norm` is rescaled to that norm before applying
    /// (MXNet's `clip_gradient` optimizer option).
    ///
    /// # Panics
    ///
    /// Panics if `max_norm` is not positive and finite.
    pub fn with_grad_clip(mut self, max_norm: f32) -> Self {
        assert!(
            max_norm.is_finite() && max_norm > 0.0,
            "clip norm must be positive and finite"
        );
        self.grad_clip = Some(max_norm);
        self
    }

    /// Enables server-side Polyak momentum: each push applies
    /// `v ← β·v + g; w ← w − lr·v` (MXNet's `sgd` optimizer with
    /// `momentum = β`, the update rule the paper's ResNet/MF workloads
    /// train with).
    ///
    /// # Panics
    ///
    /// Panics if `beta` is not in `[0, 1)`.
    pub fn with_momentum(mut self, beta: f32) -> Self {
        assert!((0.0..1.0).contains(&beta), "momentum must be in [0, 1)");
        self.momentum = beta;
        if beta > 0.0 {
            self.velocity = vec![0.0; self.params.len()];
            self.last_sync = vec![0; self.params.len()];
        }
        self
    }

    /// Number of parameters.
    pub fn num_params(&self) -> usize {
        self.params.len()
    }

    /// The shard layout.
    pub fn layout(&self) -> &ShardLayout {
        &self.layout
    }

    /// Global version: total number of pushes applied so far.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Current global parameters (server-side view, no copy). Takes `&mut`
    /// because pending lazy momentum decay is materialized first.
    pub fn params(&mut self) -> &[f32] {
        self.materialize();
        &self.params
    }

    /// Replays pending momentum decay steps so every coordinate is exact at
    /// the current version. A coordinate `delta` versions behind replays the
    /// same `v ← β·v; w ← w − lr·v` arithmetic the dense path would have
    /// run, so lazy and eager results are bit-identical. Work-conserving:
    /// each (coordinate, version) decay step is executed at most once
    /// across the store's lifetime, and zero-velocity coordinates fast-skip.
    fn materialize(&mut self) {
        if self.momentum == 0.0 || !self.lazy_behind {
            return;
        }
        let beta = self.momentum;
        let lr = self.lazy_lr;
        for (j, sync) in self.last_sync.iter_mut().enumerate() {
            let delta = self.version - *sync;
            if delta == 0 {
                continue;
            }
            *sync = self.version;
            let mut v = self.velocity[j];
            if v == 0.0 {
                continue;
            }
            let mut p = self.params[j];
            for _ in 0..delta {
                v *= beta;
                p -= lr * v;
            }
            self.velocity[j] = v;
            self.params[j] = p;
        }
        self.lazy_behind = false;
    }

    fn ensure_worker(&mut self, worker: WorkerId) {
        let need = worker.index() + 1;
        if self.pushes_per_worker.len() < need {
            self.pushes_per_worker.resize(need, 0);
            self.last_pull_version.resize(need, 0);
        }
    }

    /// Applies a gradient push from `worker`: `w -= lr * grad`, applied
    /// atomically across all shards in arrival order. Returns the new
    /// global version.
    ///
    /// # Panics
    ///
    /// Panics if `grad.len()` differs from the parameter count or `lr` is
    /// not finite.
    pub fn apply_push(&mut self, worker: WorkerId, grad: &[f32], lr: f32) -> u64 {
        assert_eq!(grad.len(), self.params.len(), "gradient length mismatch");
        assert!(lr.is_finite(), "learning rate must be finite");
        self.ensure_worker(worker);
        self.snapshot = None;
        // Apply clipping as a scale factor so the (possibly large) gradient
        // buffer is never copied.
        let scale = clip_scale(self.grad_clip, grad.iter().copied());
        if self.momentum > 0.0 {
            // A dense push advances every coordinate, so pending lazy decay
            // must be settled first.
            self.materialize();
            let beta = self.momentum;
            for ((p, v), g) in self.params.iter_mut().zip(&mut self.velocity).zip(grad) {
                *v = beta * *v + g * scale;
                *p -= lr * *v;
            }
            self.version += 1;
            self.last_sync.fill(self.version);
        } else {
            for (p, g) in self.params.iter_mut().zip(grad) {
                *p -= lr * g * scale;
            }
            self.version += 1;
        }
        self.pushes_per_worker[worker.index()] += 1;
        self.version
    }

    /// Applies a sparse gradient push from `worker` in O(nnz): only the
    /// gradient's touched coordinates are visited. Clipping uses the same
    /// L2 norm as the dense path (untouched coordinates contribute zero),
    /// and momentum decay for untouched coordinates is deferred via
    /// [`materialize`](Self::params) bookkeeping, so the result matches an
    /// equivalent dense push bit-for-bit. Returns the new global version.
    ///
    /// # Panics
    ///
    /// Panics if `grad.dim()` differs from the parameter count or `lr` is
    /// not finite.
    pub fn apply_push_sparse(&mut self, worker: WorkerId, grad: &SparseGrad, lr: f32) -> u64 {
        assert_eq!(grad.dim(), self.params.len(), "gradient length mismatch");
        assert!(lr.is_finite(), "learning rate must be finite");
        self.ensure_worker(worker);
        self.snapshot = None;
        let scale = clip_scale_from_sum(self.grad_clip, grad.sum_squares());
        if self.momentum > 0.0 {
            if lr != self.lazy_lr {
                // Pending decay steps were deferred under the old lr;
                // settle them before this push changes it.
                self.materialize();
                self.lazy_lr = lr;
            }
            let beta = self.momentum;
            let version = self.version;
            let params = &mut self.params;
            let velocity = &mut self.velocity;
            let last_sync = &mut self.last_sync;
            for (j, g) in grad.iter() {
                let mut v = velocity[j];
                let mut p = params[j];
                // Replay this coordinate's skipped decay steps first
                // (bit-identical to what eager dense pushes would have run).
                let delta = version - last_sync[j];
                if delta != 0 && v != 0.0 {
                    for _ in 0..delta {
                        v *= beta;
                        p -= lr * v;
                    }
                }
                v = beta * v + g * scale;
                velocity[j] = v;
                params[j] = p - lr * v;
                last_sync[j] = version + 1;
            }
            // Untouched coordinates are now one version behind.
            self.lazy_behind = true;
        } else {
            for (j, g) in grad.iter() {
                self.params[j] -= lr * g * scale;
            }
        }
        self.version += 1;
        self.pushes_per_worker[worker.index()] += 1;
        self.version
    }

    /// Serves a pull from `worker`: snapshots the current parameters and
    /// records the version the worker now holds (the basis for staleness
    /// accounting).
    ///
    /// Pulls between two pushes are zero-copy: the snapshot buffer is built
    /// once per version and shared by reference with every puller.
    pub fn pull(&mut self, worker: WorkerId) -> ParamSnapshot {
        self.ensure_worker(worker);
        self.last_pull_version[worker.index()] = self.version;
        let params = match &self.snapshot {
            Some(shared) => Arc::clone(shared),
            None => {
                self.materialize();
                let shared: Arc<[f32]> = Arc::from(self.params.as_slice());
                self.snapshot = Some(Arc::clone(&shared));
                shared
            }
        };
        ParamSnapshot {
            params,
            version: self.version,
        }
    }

    /// The current parameters as a shared immutable block, without any
    /// per-worker pull bookkeeping. Zero-copy while the store is unchanged:
    /// the same cached allocation backs every call (and every [`pull`])
    /// between two pushes.
    ///
    /// [`pull`]: Self::pull
    pub fn shared_params(&mut self) -> Arc<[f32]> {
        match &self.snapshot {
            Some(shared) => Arc::clone(shared),
            None => {
                self.materialize();
                let shared: Arc<[f32]> = Arc::from(self.params.as_slice());
                self.snapshot = Some(Arc::clone(&shared));
                shared
            }
        }
    }

    /// Captures a crash-consistent [`StoreCheckpoint`]: parameters,
    /// optimizer state, version and per-worker bookkeeping. Pending lazy
    /// momentum decay is settled first, so the capture is exact at the
    /// current version and restoring it resumes bit-identically.
    pub fn snapshot_for_checkpoint(&mut self) -> StoreCheckpoint {
        self.materialize();
        StoreCheckpoint {
            params: self.params.clone(),
            num_shards: self.layout.num_shards(),
            version: self.version,
            pushes_per_worker: self.pushes_per_worker.clone(),
            last_pull_version: self.last_pull_version.clone(),
            momentum: self.momentum,
            velocity: self.velocity.clone(),
            grad_clip: self.grad_clip,
        }
    }

    /// Rebuilds a store from a checkpoint, resuming exactly where
    /// [`snapshot_for_checkpoint`](Self::snapshot_for_checkpoint) captured
    /// it: every subsequent push, pull and staleness query behaves as if
    /// the original store had never gone away.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Malformed`] if the checkpoint violates a
    /// store invariant (possible only for hand-built or corrupted blobs;
    /// captures of live stores always restore).
    pub fn restore(checkpoint: StoreCheckpoint) -> Result<Self, CheckpointError> {
        checkpoint.validate()?;
        let StoreCheckpoint {
            params,
            num_shards,
            version,
            pushes_per_worker,
            last_pull_version,
            momentum,
            velocity,
            grad_clip,
        } = checkpoint;
        let layout = ShardLayout::try_new(params.len(), num_shards)
            .map_err(|_| CheckpointError::Malformed("shard count out of range"))?;
        // The capture settled all lazy momentum state, so every coordinate
        // is synced at `version` and nothing is behind.
        let last_sync = if momentum > 0.0 {
            vec![version; params.len()]
        } else {
            Vec::new()
        };
        Ok(ParameterStore {
            params,
            layout,
            version,
            pushes_per_worker,
            last_pull_version,
            momentum,
            velocity,
            grad_clip,
            snapshot: None,
            last_sync,
            lazy_lr: 0.0,
            lazy_behind: false,
        })
    }

    /// How many pushes `worker` has applied.
    pub fn pushes_by(&self, worker: WorkerId) -> u64 {
        self.pushes_per_worker
            .get(worker.index())
            .copied()
            .unwrap_or(0)
    }

    /// The staleness of `worker`'s replica: pushes applied globally since
    /// its last pull (the "missing updates" of paper §II-C).
    pub fn staleness_of(&self, worker: WorkerId) -> u64 {
        let pulled = self
            .last_pull_version
            .get(worker.index())
            .copied()
            .unwrap_or(0);
        self.version - pulled
    }
}

/// Gradient-clipping scale factor shared by the dense and sparse push
/// paths. The L2 norm accumulates in `f64`: an `f32` running sum of squares
/// loses low-order contributions (and can overflow) at ImageNet-like
/// parameter counts. Zero entries contribute exactly zero, so summing only
/// a sparse gradient's stored entries yields the identical norm.
fn clip_scale(clip: Option<f32>, grad: impl Iterator<Item = f32>) -> f32 {
    match clip {
        Some(_) => clip_scale_from_sum(clip, grad.map(|g| g as f64).map(|g| g * g).sum::<f64>()),
        None => 1.0,
    }
}

/// [`clip_scale`] from a precomputed sum of squared entries (sparse pushes
/// cache it at gradient-build time, making the push clip check O(1)).
fn clip_scale_from_sum(clip: Option<f32>, sum_sq: f64) -> f32 {
    match clip {
        Some(max_norm) => {
            let norm = sum_sq.sqrt() as f32;
            if norm > max_norm {
                max_norm / norm
            } else {
                1.0
            }
        }
        None => 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(i: usize) -> WorkerId {
        WorkerId::new(i)
    }

    #[test]
    fn push_applies_scaled_gradient() {
        let mut s = ParameterStore::new(vec![1.0, 2.0, 3.0], 2);
        s.apply_push(w(0), &[1.0, 0.0, -1.0], 0.5);
        assert_eq!(s.params(), &[0.5, 2.0, 3.5]);
        assert_eq!(s.version(), 1);
    }

    #[test]
    fn pushes_compose_in_arrival_order() {
        let mut s = ParameterStore::new(vec![0.0], 1);
        s.apply_push(w(0), &[1.0], 1.0);
        s.apply_push(w(1), &[1.0], 0.5);
        assert_eq!(s.params(), &[-1.5]);
        assert_eq!(s.version(), 2);
        assert_eq!(s.pushes_by(w(0)), 1);
        assert_eq!(s.pushes_by(w(1)), 1);
    }

    #[test]
    fn pull_snapshots_are_isolated_from_later_pushes() {
        let mut s = ParameterStore::new(vec![0.0], 1);
        let snap = s.pull(w(0));
        s.apply_push(w(1), &[1.0], 1.0);
        assert_eq!(snap.params(), &[0.0]);
        assert_eq!(snap.version(), 0);
        assert_eq!(s.pull(w(1)).params(), &[-1.0]);
    }

    #[test]
    fn staleness_counts_pushes_since_last_pull() {
        let mut s = ParameterStore::new(vec![0.0], 1);
        s.pull(w(0));
        assert_eq!(s.staleness_of(w(0)), 0);
        s.apply_push(w(1), &[1.0], 1.0);
        s.apply_push(w(2), &[1.0], 1.0);
        assert_eq!(s.staleness_of(w(0)), 2);
        s.pull(w(0));
        assert_eq!(s.staleness_of(w(0)), 0);
    }

    #[test]
    fn staleness_of_never_pulled_worker_counts_all_pushes() {
        let mut s = ParameterStore::new(vec![0.0], 1);
        s.apply_push(w(0), &[1.0], 1.0);
        assert_eq!(s.staleness_of(w(5)), 1);
    }

    #[test]
    #[should_panic(expected = "gradient length mismatch")]
    fn mismatched_gradient_panics() {
        let mut s = ParameterStore::new(vec![0.0, 0.0], 1);
        s.apply_push(w(0), &[1.0], 1.0);
    }

    #[test]
    fn grad_clip_rescales_large_pushes() {
        let mut s = ParameterStore::new(vec![0.0, 0.0], 1).with_grad_clip(1.0);
        // Norm 5 gradient clipped to norm 1: (3,4)/5 = (0.6, 0.8).
        s.apply_push(w(0), &[3.0, 4.0], 1.0);
        assert!((s.params()[0] + 0.6).abs() < 1e-6);
        assert!((s.params()[1] + 0.8).abs() < 1e-6);
        // Small gradients pass through unchanged.
        s.apply_push(w(0), &[0.1, 0.0], 1.0);
        assert!((s.params()[0] + 0.7).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "clip norm must be positive")]
    fn zero_clip_panics() {
        let _ = ParameterStore::new(vec![0.0], 1).with_grad_clip(0.0);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut s = ParameterStore::new(vec![0.0], 1).with_momentum(0.5);
        s.apply_push(w(0), &[1.0], 1.0);
        // v = 1.0, w = -1.0
        assert_eq!(s.params(), &[-1.0]);
        s.apply_push(w(0), &[1.0], 1.0);
        // v = 1.5, w = -2.5
        assert_eq!(s.params(), &[-2.5]);
    }

    #[test]
    fn zero_momentum_matches_plain_sgd() {
        let mut a = ParameterStore::new(vec![0.0], 1);
        let mut b = ParameterStore::new(vec![0.0], 1).with_momentum(0.0);
        a.apply_push(w(0), &[2.0], 0.5);
        b.apply_push(w(0), &[2.0], 0.5);
        assert_eq!(a.params(), b.params());
    }

    #[test]
    #[should_panic(expected = "momentum must be in [0, 1)")]
    fn invalid_momentum_panics() {
        let _ = ParameterStore::new(vec![0.0], 1).with_momentum(1.0);
    }

    #[test]
    fn snapshot_into_params_round_trips() {
        let mut s = ParameterStore::new(vec![7.0], 1);
        assert_eq!(s.pull(w(0)).into_params(), vec![7.0]);
    }

    #[test]
    fn pulls_between_pushes_share_one_allocation() {
        let mut s = ParameterStore::new(vec![1.0, 2.0], 1);
        let a = s.pull(w(0)).into_shared();
        let b = s.pull(w(1)).into_shared();
        assert!(
            Arc::ptr_eq(&a, &b),
            "same-version pulls must share the buffer"
        );
        s.apply_push(w(0), &[1.0, 0.0], 0.1);
        let c = s.pull(w(0)).into_shared();
        assert!(
            !Arc::ptr_eq(&a, &c),
            "a push must invalidate the cached snapshot"
        );
        // The old snapshot is unaffected by the push.
        assert_eq!(&a[..], &[1.0, 2.0]);
    }

    fn sparse(dim: usize, pairs: &[(usize, f32)]) -> SparseGrad {
        let mut g = SparseGrad::new();
        g.reset(dim);
        for &(i, v) in pairs {
            g.add(i, v);
        }
        g.finish();
        g
    }

    #[test]
    fn sparse_push_touches_only_given_coordinates() {
        let mut s = ParameterStore::new(vec![1.0, 2.0, 3.0], 2);
        s.apply_push_sparse(w(0), &sparse(3, &[(0, 1.0), (2, -1.0)]), 0.5);
        assert_eq!(s.params(), &[0.5, 2.0, 3.5]);
        assert_eq!(s.version(), 1);
    }

    #[test]
    fn sparse_push_matches_dense_push_plain_sgd() {
        let mut dense = ParameterStore::new(vec![0.5, -1.0, 2.0, 0.0], 2);
        let mut sparse_store = dense.clone();
        let g = sparse(4, &[(1, 0.25), (3, -0.5)]);
        dense.apply_push(w(0), &g.to_dense(), 0.3);
        sparse_store.apply_push_sparse(w(0), &g, 0.3);
        assert_eq!(dense.params(), sparse_store.params());
    }

    #[test]
    fn sparse_push_matches_dense_push_with_momentum_and_clip() {
        let mut dense = ParameterStore::new(vec![0.0; 6], 2)
            .with_momentum(0.9)
            .with_grad_clip(0.1);
        let mut sp = dense.clone();
        let pushes: Vec<SparseGrad> = vec![
            sparse(6, &[(0, 1.0), (3, 2.0)]),
            sparse(6, &[(1, -1.0)]),
            sparse(6, &[(0, 0.5), (5, 1.5)]),
            sparse(6, &[(3, -0.25), (4, 4.0)]),
        ];
        for (i, g) in pushes.iter().enumerate() {
            dense.apply_push(w(i), &g.to_dense(), 0.05);
            sp.apply_push_sparse(w(i), g, 0.05);
        }
        // Exact equality: the lazy path replays the identical arithmetic.
        assert_eq!(dense.params(), sp.params());
    }

    #[test]
    fn lazy_momentum_decays_untouched_coordinates() {
        // Build up velocity on coordinate 0, then push only coordinate 1:
        // coordinate 0 must still drift by lr * beta * v.
        let mut s = ParameterStore::new(vec![0.0, 0.0], 1).with_momentum(0.5);
        s.apply_push_sparse(w(0), &sparse(2, &[(0, 1.0)]), 1.0);
        // v0 = 1, p0 = -1
        s.apply_push_sparse(w(0), &sparse(2, &[(1, 1.0)]), 1.0);
        // v0 = 0.5, p0 = -1.5 (after materialization)
        assert_eq!(s.params(), &[-1.5, -1.0]);
    }

    #[test]
    fn lazy_momentum_flushes_on_lr_change() {
        let mut dense = ParameterStore::new(vec![0.0; 4], 1).with_momentum(0.9);
        let mut sp = dense.clone();
        let g1 = sparse(4, &[(0, 1.0)]);
        let g2 = sparse(4, &[(2, 1.0)]);
        for (g, lr) in [(&g1, 0.5), (&g2, 0.5), (&g1, 0.05), (&g2, 0.05)] {
            dense.apply_push(w(0), &g.to_dense(), lr);
            sp.apply_push_sparse(w(0), g, lr);
        }
        assert_eq!(dense.params(), sp.params());
    }

    #[test]
    fn sparse_and_dense_pushes_interleave() {
        let mut dense = ParameterStore::new(vec![0.0; 4], 1).with_momentum(0.8);
        let mut sp = dense.clone();
        let g1 = sparse(4, &[(1, 1.0)]);
        let g2 = sparse(4, &[(3, -2.0)]);
        dense.apply_push(w(0), &g1.to_dense(), 0.1);
        sp.apply_push_sparse(w(0), &g1, 0.1);
        // A dense push in the middle forces a full flush.
        dense.apply_push(w(1), &[0.1, 0.2, 0.3, 0.4], 0.1);
        sp.apply_push(w(1), &[0.1, 0.2, 0.3, 0.4], 0.1);
        dense.apply_push(w(0), &g2.to_dense(), 0.1);
        sp.apply_push_sparse(w(0), &g2, 0.1);
        assert_eq!(dense.params(), sp.params());
        assert_eq!(dense.version(), sp.version());
    }

    #[test]
    fn sparse_push_after_pull_keeps_snapshot_immutable() {
        let mut s = ParameterStore::new(vec![1.0, 1.0], 1).with_momentum(0.9);
        let snap = s.pull(w(0));
        s.apply_push_sparse(w(0), &sparse(2, &[(0, 1.0)]), 0.5);
        assert_eq!(snap.params(), &[1.0, 1.0]);
        assert_eq!(s.pull(w(0)).version(), 1);
    }

    #[test]
    #[should_panic(expected = "gradient length mismatch")]
    fn mismatched_sparse_gradient_panics() {
        let mut s = ParameterStore::new(vec![0.0, 0.0], 1);
        s.apply_push_sparse(w(0), &sparse(3, &[(0, 1.0)]), 1.0);
    }
}
