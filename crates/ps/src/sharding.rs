//! Key-range sharding of the flat parameter vector across server nodes.
//!
//! In the PS architecture (paper Fig. 1) "the model parameters are sharded
//! across multiple servers". The layout here is contiguous range sharding —
//! what MXNet's kvstore does per key — and is used to attribute transfer
//! bytes to server nodes and to size per-shard messages.

use serde::{Deserialize, Serialize};

/// Identifies one parameter shard (one server's slice).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ShardId(usize);

impl ShardId {
    /// Creates the id of the `index`-th shard.
    pub const fn new(index: usize) -> Self {
        ShardId(index)
    }

    /// The shard's index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for ShardId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shard-{}", self.0)
    }
}

/// A contiguous-range sharding of `num_params` parameters over `num_shards`
/// servers, as equal as possible.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardLayout {
    ranges: Vec<(usize, usize)>,
    num_params: usize,
}

impl ShardLayout {
    /// Creates a layout.
    ///
    /// # Panics
    ///
    /// Panics if `num_params == 0` or `num_shards == 0`.
    pub fn new(num_params: usize, num_shards: usize) -> Self {
        assert!(num_params > 0, "cannot shard zero parameters");
        assert!(num_shards > 0, "need at least one shard");
        let shards = num_shards.min(num_params);
        let base = num_params / shards;
        let extra = num_params % shards;
        let mut ranges = Vec::with_capacity(shards);
        let mut start = 0;
        for s in 0..shards {
            let len = base + usize::from(s < extra);
            ranges.push((start, start + len));
            start += len;
        }
        ShardLayout { ranges, num_params }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.ranges.len()
    }

    /// Total parameters across all shards.
    pub fn num_params(&self) -> usize {
        self.num_params
    }

    /// The half-open parameter range `[lo, hi)` owned by `shard`.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn range(&self, shard: ShardId) -> (usize, usize) {
        self.ranges[shard.index()]
    }

    /// The shard owning parameter `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= num_params`.
    pub fn shard_of(&self, index: usize) -> ShardId {
        assert!(index < self.num_params, "parameter index out of range");
        // Ranges are equal-or-off-by-one, so a direct computation works:
        // the first `extra` shards have `base + 1` params.
        let shards = self.ranges.len();
        let base = self.num_params / shards;
        let extra = self.num_params % shards;
        let boundary = extra * (base + 1);
        let s = if index < boundary {
            index / (base + 1)
        } else {
            extra + (index - boundary) / base
        };
        ShardId::new(s)
    }

    /// Iterates over `(ShardId, (lo, hi))` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ShardId, (usize, usize))> + '_ {
        self.ranges
            .iter()
            .enumerate()
            .map(|(i, &r)| (ShardId::new(i), r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_covers_all_params_contiguously() {
        let l = ShardLayout::new(103, 7);
        assert_eq!(l.num_shards(), 7);
        let mut expected_start = 0;
        for (_, (lo, hi)) in l.iter() {
            assert_eq!(lo, expected_start);
            expected_start = hi;
        }
        assert_eq!(expected_start, 103);
    }

    #[test]
    fn shard_sizes_differ_by_at_most_one() {
        let l = ShardLayout::new(100, 8);
        let sizes: Vec<usize> = l.iter().map(|(_, (lo, hi))| hi - lo).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn shard_of_agrees_with_ranges() {
        let l = ShardLayout::new(97, 5);
        for (sid, (lo, hi)) in l.iter() {
            for i in lo..hi {
                assert_eq!(l.shard_of(i), sid, "param {i}");
            }
        }
    }

    #[test]
    fn more_shards_than_params_collapses() {
        let l = ShardLayout::new(3, 10);
        assert_eq!(l.num_shards(), 3);
    }

    #[test]
    #[should_panic(expected = "parameter index out of range")]
    fn shard_of_out_of_range_panics() {
        ShardLayout::new(10, 2).shard_of(10);
    }
}
