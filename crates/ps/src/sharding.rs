//! Key-range sharding of the flat parameter vector across server nodes.
//!
//! In the PS architecture (paper Fig. 1) "the model parameters are sharded
//! across multiple servers". The layout here is contiguous range sharding —
//! what MXNet's kvstore does per key — and is used to attribute transfer
//! bytes to server nodes and to size per-shard messages.

use serde::{Deserialize, Serialize};

/// An invalid shard layout request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardLayoutError {
    /// `num_params == 0`: there is nothing to shard.
    ZeroParams,
    /// `num_shards == 0`: at least one server must own the parameters.
    ZeroShards,
    /// More shards than parameters: some servers would own empty ranges,
    /// which silently skews per-server transfer accounting.
    MoreShardsThanParams {
        /// The requested parameter count.
        num_params: usize,
        /// The requested (too large) shard count.
        num_shards: usize,
    },
}

impl std::fmt::Display for ShardLayoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardLayoutError::ZeroParams => write!(f, "cannot shard zero parameters"),
            ShardLayoutError::ZeroShards => write!(f, "need at least one shard"),
            ShardLayoutError::MoreShardsThanParams {
                num_params,
                num_shards,
            } => write!(
                f,
                "cannot split {num_params} parameters into {num_shards} shards: \
                 every shard must own at least one parameter"
            ),
        }
    }
}

impl std::error::Error for ShardLayoutError {}

/// Identifies one parameter shard (one server's slice).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ShardId(usize);

impl ShardId {
    /// Creates the id of the `index`-th shard.
    pub const fn new(index: usize) -> Self {
        ShardId(index)
    }

    /// The shard's index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for ShardId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shard-{}", self.0)
    }
}

/// A contiguous-range sharding of `num_params` parameters over `num_shards`
/// servers, as equal as possible.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardLayout {
    ranges: Vec<(usize, usize)>,
    num_params: usize,
}

impl ShardLayout {
    /// Creates a layout.
    ///
    /// # Errors
    ///
    /// Returns [`ShardLayoutError`] if either count is zero, or if
    /// `num_shards > num_params` (which would leave servers owning empty
    /// ranges).
    pub fn try_new(num_params: usize, num_shards: usize) -> Result<Self, ShardLayoutError> {
        if num_params == 0 {
            return Err(ShardLayoutError::ZeroParams);
        }
        if num_shards == 0 {
            return Err(ShardLayoutError::ZeroShards);
        }
        if num_shards > num_params {
            return Err(ShardLayoutError::MoreShardsThanParams {
                num_params,
                num_shards,
            });
        }
        let base = num_params / num_shards;
        let extra = num_params % num_shards;
        let mut ranges = Vec::with_capacity(num_shards);
        let mut start = 0;
        for s in 0..num_shards {
            let len = base + usize::from(s < extra);
            ranges.push((start, start + len));
            start += len;
        }
        Ok(ShardLayout { ranges, num_params })
    }

    /// Creates a layout.
    ///
    /// # Panics
    ///
    /// Panics if the request is invalid; see [`ShardLayout::try_new`].
    pub fn new(num_params: usize, num_shards: usize) -> Self {
        match ShardLayout::try_new(num_params, num_shards) {
            Ok(layout) => layout,
            Err(e) => panic!("{e}"),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.ranges.len()
    }

    /// Total parameters across all shards.
    pub fn num_params(&self) -> usize {
        self.num_params
    }

    /// The half-open parameter range `[lo, hi)` owned by `shard`.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn range(&self, shard: ShardId) -> (usize, usize) {
        self.ranges[shard.index()]
    }

    /// The shard owning parameter `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= num_params`.
    pub fn shard_of(&self, index: usize) -> ShardId {
        assert!(index < self.num_params, "parameter index out of range");
        // Ranges are equal-or-off-by-one, so a direct computation works:
        // the first `extra` shards have `base + 1` params.
        let shards = self.ranges.len();
        let base = self.num_params / shards;
        let extra = self.num_params % shards;
        let boundary = extra * (base + 1);
        let s = if index < boundary {
            index / (base + 1)
        } else {
            extra + (index - boundary) / base
        };
        ShardId::new(s)
    }

    /// Iterates over `(ShardId, (lo, hi))` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ShardId, (usize, usize))> + '_ {
        self.ranges
            .iter()
            .enumerate()
            .map(|(i, &r)| (ShardId::new(i), r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_covers_all_params_contiguously() {
        let l = ShardLayout::new(103, 7);
        assert_eq!(l.num_shards(), 7);
        let mut expected_start = 0;
        for (_, (lo, hi)) in l.iter() {
            assert_eq!(lo, expected_start);
            expected_start = hi;
        }
        assert_eq!(expected_start, 103);
    }

    #[test]
    fn shard_sizes_differ_by_at_most_one() {
        let l = ShardLayout::new(100, 8);
        let sizes: Vec<usize> = l.iter().map(|(_, (lo, hi))| hi - lo).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn shard_of_agrees_with_ranges() {
        let l = ShardLayout::new(97, 5);
        for (sid, (lo, hi)) in l.iter() {
            for i in lo..hi {
                assert_eq!(l.shard_of(i), sid, "param {i}");
            }
        }
    }

    #[test]
    fn more_shards_than_params_is_a_typed_error() {
        assert_eq!(
            ShardLayout::try_new(3, 10),
            Err(ShardLayoutError::MoreShardsThanParams {
                num_params: 3,
                num_shards: 10,
            })
        );
        assert_eq!(
            ShardLayout::try_new(0, 1),
            Err(ShardLayoutError::ZeroParams)
        );
        assert_eq!(
            ShardLayout::try_new(1, 0),
            Err(ShardLayoutError::ZeroShards)
        );
        // Errors render a human-readable description, never a panic.
        let msg = ShardLayout::try_new(3, 10).unwrap_err().to_string();
        assert!(msg.contains("3 parameters"), "unexpected message: {msg}");
    }

    #[test]
    #[should_panic(expected = "parameter index out of range")]
    fn shard_of_out_of_range_panics() {
        ShardLayout::new(10, 2).shard_of(10);
    }
}
