//! Primary/backup replication with promote-on-crash failover.
//!
//! A [`ReplicatedStore`] keeps two full copies of the sharded parameter
//! state: the *primary* serves every pull and push, and a *warm backup*
//! trails it by at most the [`PushJournal`] capacity. Per-[`ShardId`]
//! bookkeeping ([`ShardReplica`]) tracks which servers are up; while any
//! shard's server is down the store refuses traffic with a typed
//! [`ReplicaError`] and the host retries until the backup is promoted.
//!
//! The failover invariants (DESIGN.md §13):
//!
//! 1. **Write-ahead**: a push is journaled before it touches the primary,
//!    tagged with the version it will produce.
//! 2. **Bounded lag**: when the journal fills, the backup synchronously
//!    catches up; the backup is never more than `journal capacity` pushes
//!    behind.
//! 3. **Exactly-once replay**: the backup-applied watermark guarantees
//!    each journaled sequence number is applied to the backup once, ever —
//!    promotion replays exactly the unseen suffix, so no push is lost and
//!    none is applied twice.
//! 4. **Determinism**: replay runs the same `ParameterStore` arithmetic
//!    the primary ran, in the same order, so a promoted backup is
//!    bit-identical to the primary it replaces.

use std::sync::Arc;

use specsync_simnet::WorkerId;
use specsync_tensor::SparseGrad;

use crate::journal::{JournalEntry, PushJournal, PushPayload};
use crate::sharding::{ShardId, ShardLayout};
use crate::store::{ParamSnapshot, ParameterStore};

/// A replication-layer failure: traffic refused or a misdirected
/// failover-protocol call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaError {
    /// The named server shard does not exist in the layout.
    UnknownServer(usize),
    /// The named server shard is down; retry after promotion.
    ServerDown(usize),
    /// A crash/promote/recover call targeted a server in the wrong state.
    WrongState {
        /// The targeted server shard.
        server: usize,
        /// What the protocol call required of it.
        expected: &'static str,
    },
}

impl std::fmt::Display for ReplicaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplicaError::UnknownServer(s) => write!(f, "unknown server shard {s}"),
            ReplicaError::ServerDown(s) => {
                write!(f, "server shard {s} is down; retry after failover")
            }
            ReplicaError::WrongState { server, expected } => {
                write!(f, "server shard {server} is not {expected}")
            }
        }
    }
}

impl std::error::Error for ReplicaError {}

/// Which replica is serving a shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaRole {
    /// The original primary is serving.
    Primary,
    /// The primary died and the promoted backup is serving.
    PromotedBackup,
    /// The server is down and traffic is refused (between crash and
    /// promotion).
    Down,
}

/// Per-shard replica bookkeeping: the serving role and failover count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardReplica {
    shard: ShardId,
    role: ReplicaRole,
    failovers: u64,
}

impl ShardReplica {
    /// The shard this replica pair serves.
    pub fn shard(&self) -> ShardId {
        self.shard
    }

    /// The current serving role.
    pub fn role(&self) -> ReplicaRole {
        self.role
    }

    /// How many times this shard has failed over.
    pub fn failovers(&self) -> u64 {
        self.failovers
    }
}

/// A primary/backup replicated [`ParameterStore`] with a bounded
/// write-ahead push journal and deterministic promote-on-crash failover.
///
/// # Examples
///
/// ```
/// use specsync_ps::{ParameterStore, ReplicatedStore};
/// use specsync_simnet::WorkerId;
///
/// let store = ParameterStore::new(vec![0.0; 4], 2);
/// let mut rep = ReplicatedStore::from_store(store, 8);
/// rep.try_apply_push(WorkerId::new(0), &[1.0; 4], 0.1).unwrap();
/// rep.crash_server(0).unwrap();
/// assert!(rep.try_apply_push(WorkerId::new(0), &[1.0; 4], 0.1).is_err());
/// let replayed = rep.promote(0).unwrap();
/// assert_eq!(replayed, 1);
/// rep.try_apply_push(WorkerId::new(0), &[1.0; 4], 0.1).unwrap();
/// assert_eq!(rep.version(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct ReplicatedStore {
    primary: ParameterStore,
    backup: ParameterStore,
    journal: PushJournal,
    /// Watermark: every journaled push with `seq <=` this is durable on
    /// the backup. The exactly-once guarantee lives here.
    backup_applied: u64,
    replicas: Vec<ShardReplica>,
    /// Number of shards currently down (fast availability check).
    down: usize,
}

impl ReplicatedStore {
    /// Default journal capacity: deep enough that a healthy run never
    /// forces synchronous catch-up, small enough to keep failover replay
    /// short.
    pub const DEFAULT_JOURNAL_CAPACITY: usize = 256;

    /// Wraps an existing store (optimizer options and all) with a warm
    /// backup and a journal of `journal_capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `journal_capacity == 0`.
    pub fn from_store(store: ParameterStore, journal_capacity: usize) -> Self {
        let backup_applied = store.version();
        let replicas = store
            .layout()
            .iter()
            .map(|(shard, _)| ShardReplica {
                shard,
                role: ReplicaRole::Primary,
                failovers: 0,
            })
            .collect();
        ReplicatedStore {
            backup: store.clone(),
            primary: store,
            journal: PushJournal::new(journal_capacity),
            backup_applied,
            replicas,
            down: 0,
        }
    }

    /// True if every shard's server is serving (traffic is accepted).
    pub fn is_available(&self) -> bool {
        self.down == 0
    }

    /// The first down server shard, if any (the index hosts report in
    /// [`ReplicaError::ServerDown`]).
    fn first_down(&self) -> Option<usize> {
        self.replicas
            .iter()
            .position(|r| r.role == ReplicaRole::Down)
    }

    /// Per-shard replica states, indexed by shard.
    pub fn replicas(&self) -> &[ShardReplica] {
        &self.replicas
    }

    /// Total failovers across all shards.
    pub fn total_failovers(&self) -> u64 {
        self.replicas.iter().map(|r| r.failovers).sum()
    }

    /// Outstanding journal entries (pushes the backup has not applied).
    pub fn journal_lag(&self) -> usize {
        self.journal.len()
    }

    fn check_server(&self, server: usize) -> Result<(), ReplicaError> {
        if server >= self.replicas.len() {
            return Err(ReplicaError::UnknownServer(server));
        }
        Ok(())
    }

    fn refuse_if_down(&self) -> Result<(), ReplicaError> {
        match self.first_down() {
            Some(s) => Err(ReplicaError::ServerDown(s)),
            None => Ok(()),
        }
    }

    /// Replays every journaled push the backup has not seen, in order,
    /// and truncates the journal. Returns how many entries were applied.
    ///
    /// Exactly-once: only entries past the `backup_applied` watermark are
    /// replayed, and the watermark advances before anything else can run.
    pub fn sync_backup(&mut self) -> u64 {
        let mut applied = 0;
        // Collect seqs first: replay mutates the backup while the journal
        // is borrowed otherwise.
        let pending: Vec<JournalEntry> = self
            .journal
            .entries_after(self.backup_applied)
            .cloned()
            .collect();
        for entry in pending {
            let version = match &entry.payload {
                PushPayload::Dense(grad) => self.backup.apply_push(entry.worker, grad, entry.lr),
                PushPayload::Sparse(grad) => {
                    self.backup.apply_push_sparse(entry.worker, grad, entry.lr)
                }
            };
            debug_assert_eq!(
                version, entry.seq,
                "backup replay must reproduce the journaled version"
            );
            self.backup_applied = entry.seq;
            applied += 1;
        }
        self.journal.truncate_through(self.backup_applied);
        applied
    }

    fn journal_push(&mut self, worker: WorkerId, payload: PushPayload, lr: f32) {
        let entry = JournalEntry {
            seq: self.primary.version() + 1,
            worker,
            payload,
            lr,
        };
        if self.journal.try_append(entry.clone()).is_err() {
            // Bounded lag: a full journal forces the backup to catch up
            // synchronously before the push is accepted.
            self.sync_backup();
            self.journal
                .try_append(entry)
                .unwrap_or_else(|e| unreachable!("journal drained but still full: {e}"));
        }
    }

    /// Journals and applies a dense gradient push. Returns the new global
    /// version.
    ///
    /// # Errors
    ///
    /// Returns [`ReplicaError::ServerDown`] while a shard is failing over;
    /// the caller retries after promotion.
    pub fn try_apply_push(
        &mut self,
        worker: WorkerId,
        grad: &[f32],
        lr: f32,
    ) -> Result<u64, ReplicaError> {
        self.refuse_if_down()?;
        self.journal_push(worker, PushPayload::Dense(grad.to_vec()), lr);
        Ok(self.primary.apply_push(worker, grad, lr))
    }

    /// Journals and applies a sparse gradient push. Returns the new global
    /// version.
    ///
    /// # Errors
    ///
    /// Returns [`ReplicaError::ServerDown`] while a shard is failing over;
    /// the caller retries after promotion.
    pub fn try_apply_push_sparse(
        &mut self,
        worker: WorkerId,
        grad: &SparseGrad,
        lr: f32,
    ) -> Result<u64, ReplicaError> {
        self.refuse_if_down()?;
        self.journal_push(worker, PushPayload::Sparse(grad.clone()), lr);
        Ok(self.primary.apply_push_sparse(worker, grad, lr))
    }

    /// Serves a pull from the serving replica.
    ///
    /// # Errors
    ///
    /// Returns [`ReplicaError::ServerDown`] while a shard is failing over.
    pub fn try_pull(&mut self, worker: WorkerId) -> Result<ParamSnapshot, ReplicaError> {
        self.refuse_if_down()?;
        Ok(self.primary.pull(worker))
    }

    /// Marks `server`'s primary as crashed: traffic is refused until
    /// [`promote`](Self::promote).
    ///
    /// # Errors
    ///
    /// Returns [`ReplicaError`] if the server is unknown or already down.
    pub fn crash_server(&mut self, server: usize) -> Result<(), ReplicaError> {
        self.check_server(server)?;
        if self.replicas[server].role == ReplicaRole::Down {
            return Err(ReplicaError::WrongState {
                server,
                expected: "up",
            });
        }
        self.replicas[server].role = ReplicaRole::Down;
        self.down += 1;
        Ok(())
    }

    /// Promotes the warm backup of a crashed server: replays the journal
    /// suffix the backup has not applied (exactly once), swaps it in as
    /// the serving replica, and resumes traffic. Returns the number of
    /// replayed pushes.
    ///
    /// # Errors
    ///
    /// Returns [`ReplicaError`] if the server is unknown or not down.
    pub fn promote(&mut self, server: usize) -> Result<u64, ReplicaError> {
        self.check_server(server)?;
        if self.replicas[server].role != ReplicaRole::Down {
            return Err(ReplicaError::WrongState {
                server,
                expected: "down",
            });
        }
        let replayed = self.sync_backup();
        debug_assert_eq!(
            self.backup.version(),
            self.primary.version(),
            "a caught-up backup matches the primary's version"
        );
        std::mem::swap(&mut self.primary, &mut self.backup);
        self.replicas[server].role = ReplicaRole::PromotedBackup;
        self.replicas[server].failovers += 1;
        self.down -= 1;
        Ok(replayed)
    }

    /// Re-admits a recovered node as the shard's warm backup: the backup
    /// is re-seeded from the serving replica and the journal restarts
    /// empty. The shard returns to the `Primary` role (a full
    /// primary/backup pair again).
    ///
    /// # Errors
    ///
    /// Returns [`ReplicaError`] if the server is unknown or still down
    /// (promote first).
    pub fn recover_server(&mut self, server: usize) -> Result<(), ReplicaError> {
        self.check_server(server)?;
        if self.replicas[server].role == ReplicaRole::Down {
            return Err(ReplicaError::WrongState {
                server,
                expected: "promoted",
            });
        }
        self.backup = self.primary.clone();
        self.backup_applied = self.primary.version();
        self.journal.truncate_through(self.backup_applied);
        self.replicas[server].role = ReplicaRole::Primary;
        Ok(())
    }

    /// Captures everything a re-provisioning backup needs to reach parity:
    /// a checkpoint of the warm backup at its applied watermark plus the
    /// journal tail of pushes past that watermark, in order.
    ///
    /// The pair is consistent by construction — the checkpoint's version
    /// is exactly the watermark, and replaying the returned entries on the
    /// restored store reproduces the serving replica bit-for-bit (the same
    /// exactly-once arithmetic [`sync_backup`](Self::sync_backup) runs).
    /// Snapshotting the *backup* instead of the serving primary keeps the
    /// journal intact, so the in-process warm backup loses nothing.
    pub fn rejoin_snapshot(&mut self) -> (crate::checkpoint::StoreCheckpoint, Vec<JournalEntry>) {
        let checkpoint = self.backup.snapshot_for_checkpoint();
        debug_assert_eq!(
            checkpoint.version(),
            self.backup_applied,
            "the backup checkpoint captures exactly the applied watermark"
        );
        let tail: Vec<JournalEntry> = self
            .journal
            .entries_after(self.backup_applied)
            .cloned()
            .collect();
        (checkpoint, tail)
    }

    // ----- read-side passthroughs to the serving replica -----

    /// Global version: total pushes applied.
    pub fn version(&self) -> u64 {
        self.primary.version()
    }

    /// Number of parameters.
    pub fn num_params(&self) -> usize {
        self.primary.num_params()
    }

    /// The shard layout.
    pub fn layout(&self) -> &ShardLayout {
        self.primary.layout()
    }

    /// Current global parameters of the serving replica (see
    /// [`ParameterStore::params`]).
    pub fn params(&mut self) -> &[f32] {
        self.primary.params()
    }

    /// Shared immutable snapshot of the serving replica (see
    /// [`ParameterStore::shared_params`]).
    pub fn shared_params(&mut self) -> Arc<[f32]> {
        self.primary.shared_params()
    }

    /// How many pushes `worker` has applied.
    pub fn pushes_by(&self, worker: WorkerId) -> u64 {
        self.primary.pushes_by(worker)
    }

    /// The staleness of `worker`'s replica (see
    /// [`ParameterStore::staleness_of`]).
    pub fn staleness_of(&self, worker: WorkerId) -> u64 {
        self.primary.staleness_of(worker)
    }

    /// The serving replica, for checkpoint capture.
    pub fn serving_store_mut(&mut self) -> &mut ParameterStore {
        &mut self.primary
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(i: usize) -> WorkerId {
        WorkerId::new(i)
    }

    fn sparse(dim: usize, pairs: &[(usize, f32)]) -> SparseGrad {
        let mut g = SparseGrad::new();
        g.reset(dim);
        for &(i, v) in pairs {
            g.add(i, v);
        }
        g.finish();
        g
    }

    /// Drives a replicated store and a plain shadow store through the same
    /// push sequence; returns both for comparison.
    fn mixed_workload(rep: &mut ReplicatedStore, shadow: &mut ParameterStore, rounds: usize) {
        for i in 0..rounds {
            if i % 3 == 0 {
                let g = sparse(4, &[(i % 4, 0.5 + i as f32 * 0.1)]);
                rep.try_apply_push_sparse(w(i % 3), &g, 0.1).unwrap();
                shadow.apply_push_sparse(w(i % 3), &g, 0.1);
            } else {
                let g = vec![0.1 * (i as f32 + 1.0); 4];
                rep.try_apply_push(w(i % 3), &g, 0.1).unwrap();
                shadow.apply_push(w(i % 3), &g, 0.1);
            }
        }
    }

    #[test]
    fn promoted_backup_is_bit_identical_to_primary() {
        let base = ParameterStore::new(vec![0.0; 4], 2).with_momentum(0.9);
        let mut shadow = base.clone();
        let mut rep = ReplicatedStore::from_store(base, 64);
        mixed_workload(&mut rep, &mut shadow, 17);

        rep.crash_server(1).unwrap();
        assert_eq!(
            rep.try_apply_push(w(0), &[1.0; 4], 0.1),
            Err(ReplicaError::ServerDown(1))
        );
        assert_eq!(rep.try_pull(w(0)).unwrap_err(), ReplicaError::ServerDown(1));

        let replayed = rep.promote(1).unwrap();
        assert_eq!(replayed, 17, "every push replays exactly once");
        assert_eq!(rep.version(), shadow.version());
        assert_eq!(rep.params(), shadow.params());
        assert_eq!(rep.total_failovers(), 1);
        assert_eq!(rep.replicas()[1].role(), ReplicaRole::PromotedBackup);
    }

    #[test]
    fn journal_overflow_forces_bounded_catchup() {
        let base = ParameterStore::new(vec![0.0; 4], 2);
        let mut shadow = base.clone();
        let mut rep = ReplicatedStore::from_store(base, 4);
        mixed_workload(&mut rep, &mut shadow, 23);
        assert!(
            rep.journal_lag() <= 4,
            "backup lag must stay within the journal bound"
        );
        // The interim catch-ups plus the promote replay cover all 23
        // pushes exactly once: the promoted state matches the shadow.
        rep.crash_server(0).unwrap();
        rep.promote(0).unwrap();
        assert_eq!(rep.version(), shadow.version());
        assert_eq!(rep.params(), shadow.params());
    }

    #[test]
    fn partial_syncs_never_double_apply() {
        let base = ParameterStore::new(vec![0.0; 4], 2).with_momentum(0.5);
        let mut shadow = base.clone();
        let mut rep = ReplicatedStore::from_store(base, 64);
        for round in 0..5 {
            mixed_workload(&mut rep, &mut shadow, 4);
            if round % 2 == 0 {
                rep.sync_backup();
                // A second sync with nothing new applies nothing.
                assert_eq!(rep.sync_backup(), 0);
            }
        }
        rep.crash_server(1).unwrap();
        rep.promote(1).unwrap();
        assert_eq!(rep.version(), shadow.version());
        assert_eq!(rep.params(), shadow.params());
    }

    #[test]
    fn failover_then_recovery_supports_a_second_failover() {
        let base = ParameterStore::new(vec![0.0; 4], 2);
        let mut shadow = base.clone();
        let mut rep = ReplicatedStore::from_store(base, 8);
        mixed_workload(&mut rep, &mut shadow, 6);
        rep.crash_server(0).unwrap();
        rep.promote(0).unwrap();
        rep.recover_server(0).unwrap();
        assert_eq!(rep.replicas()[0].role(), ReplicaRole::Primary);
        mixed_workload(&mut rep, &mut shadow, 6);
        rep.crash_server(1).unwrap();
        rep.promote(1).unwrap();
        assert_eq!(rep.version(), shadow.version());
        assert_eq!(rep.params(), shadow.params());
        assert_eq!(rep.total_failovers(), 2);
    }

    #[test]
    fn rejoin_snapshot_plus_tail_reproduces_the_primary() {
        let base = ParameterStore::new(vec![0.0; 4], 2).with_momentum(0.9);
        let mut shadow = base.clone();
        let mut rep = ReplicatedStore::from_store(base, 64);
        mixed_workload(&mut rep, &mut shadow, 9);
        rep.sync_backup();
        mixed_workload(&mut rep, &mut shadow, 8);

        let (ckpt, tail) = rep.rejoin_snapshot();
        assert_eq!(ckpt.version(), 9, "checkpoint sits at the watermark");
        assert_eq!(tail.len(), 8, "tail covers exactly the unapplied suffix");

        // A fresh node restores the checkpoint and replays the tail: the
        // result must be bit-identical to the serving primary.
        let mut joiner = ParameterStore::restore(ckpt).unwrap();
        for entry in &tail {
            let version = match &entry.payload {
                PushPayload::Dense(grad) => joiner.apply_push(entry.worker, grad, entry.lr),
                PushPayload::Sparse(grad) => {
                    joiner.apply_push_sparse(entry.worker, grad, entry.lr)
                }
            };
            assert_eq!(version, entry.seq);
        }
        assert_eq!(joiner.version(), rep.version());
        assert_eq!(joiner.params(), rep.params());

        // The capture is read-only: the in-process backup still promotes.
        rep.crash_server(0).unwrap();
        rep.promote(0).unwrap();
        assert_eq!(rep.params(), shadow.params());
    }

    #[test]
    fn protocol_misuse_is_typed() {
        let mut rep = ReplicatedStore::from_store(ParameterStore::new(vec![0.0; 4], 2), 8);
        assert_eq!(rep.crash_server(9), Err(ReplicaError::UnknownServer(9)));
        assert_eq!(
            rep.promote(0),
            Err(ReplicaError::WrongState {
                server: 0,
                expected: "down",
            })
        );
        rep.crash_server(0).unwrap();
        assert_eq!(
            rep.crash_server(0),
            Err(ReplicaError::WrongState {
                server: 0,
                expected: "up",
            })
        );
        assert_eq!(
            rep.recover_server(0),
            Err(ReplicaError::WrongState {
                server: 0,
                expected: "promoted",
            })
        );
        assert!(!rep.is_available());
        rep.promote(0).unwrap();
        assert!(rep.is_available());
    }

    #[test]
    fn worker_bookkeeping_survives_failover() {
        let mut rep = ReplicatedStore::from_store(ParameterStore::new(vec![0.0; 4], 2), 8);
        rep.try_pull(w(0)).unwrap();
        rep.try_apply_push(w(1), &[1.0; 4], 0.1).unwrap();
        rep.try_apply_push(w(1), &[1.0; 4], 0.1).unwrap();
        assert_eq!(rep.staleness_of(w(0)), 2);
        rep.crash_server(0).unwrap();
        rep.promote(0).unwrap();
        assert_eq!(rep.pushes_by(w(1)), 2);
        assert_eq!(
            rep.staleness_of(w(0)),
            2,
            "staleness accounting must survive promotion"
        );
    }
}
