//! Property-based tests of the parameter-store semantics.

use proptest::prelude::*;
use specsync_ps::{
    CheckpointError, ParameterStore, ShardLayout, ShardLayoutError, StoreCheckpoint,
};
use specsync_simnet::WorkerId;
use specsync_tensor::SparseGrad;

proptest! {
    /// A sparse push is indistinguishable from a dense push of the same
    /// gradient — across random momentum, clipping, learning-rate changes
    /// (which flush pending lazy decay), empty gradients, and interleaved
    /// pulls. The lazy-momentum replay is designed to be bit-exact, so the
    /// comparison is exact equality, stronger than the 1e-6 the design
    /// requires.
    #[test]
    fn sparse_push_is_equivalent_to_dense_push(
        dim in 1usize..24,
        momentum in prop_oneof![Just(0.0f32), 0.2f32..0.95],
        clip in prop_oneof![Just(None), (0.1f32..5.0).prop_map(Some)],
        pushes in proptest::collection::vec(
            (proptest::collection::vec((0usize..1024, -1.0f32..1.0), 0..6), 0usize..3),
            1..12,
        ),
    ) {
        let build = |init: Vec<f32>| {
            let mut s = ParameterStore::new(init, 2);
            if momentum > 0.0 {
                s = s.with_momentum(momentum);
            }
            if let Some(c) = clip {
                s = s.with_grad_clip(c);
            }
            s
        };
        let mut dense_store = build(vec![0.5; dim]);
        let mut sparse_store = build(vec![0.5; dim]);
        let mut grad = SparseGrad::new();
        let lrs = [0.5f32, 0.1, 0.05];
        for (k, (entries, lr_idx)) in pushes.iter().enumerate() {
            grad.reset(dim);
            for &(i, v) in entries {
                grad.add(i % dim, v);
            }
            grad.finish();
            let lr = lrs[*lr_idx];
            dense_store.apply_push(WorkerId::new(0), &grad.to_dense(), lr);
            sparse_store.apply_push_sparse(WorkerId::new(0), &grad, lr);
            if k % 3 == 0 {
                // Mid-stream pulls force snapshot rebuilds (and lazy
                // flushes) at arbitrary points in the push sequence.
                let d = dense_store.pull(WorkerId::new(1));
                let s = sparse_store.pull(WorkerId::new(1));
                prop_assert_eq!(d.params(), s.params());
                prop_assert_eq!(d.version(), s.version());
            }
        }
        prop_assert_eq!(dense_store.params(), sparse_store.params());
        prop_assert_eq!(dense_store.version(), sparse_store.version());
    }

    /// Version equals the number of applied pushes; per-worker counters sum
    /// to it.
    #[test]
    fn version_counts_pushes(pushes in proptest::collection::vec((0usize..5, -1.0f32..1.0), 0..50)) {
        let mut store = ParameterStore::new(vec![0.0; 4], 2);
        for &(w, g) in &pushes {
            store.apply_push(WorkerId::new(w), &[g, g, g, g], 0.1);
        }
        prop_assert_eq!(store.version(), pushes.len() as u64);
        let sum: u64 = (0..5).map(|w| store.pushes_by(WorkerId::new(w))).sum();
        prop_assert_eq!(sum, pushes.len() as u64);
    }

    /// Plain SGD pushes commute in their final sum (floating-point
    /// associativity aside, a tolerance check): the store applies
    /// w -= lr·Σg regardless of arrival order.
    #[test]
    fn sgd_updates_accumulate(grads in proptest::collection::vec(-1.0f32..1.0, 1..30)) {
        let mut store = ParameterStore::new(vec![0.0], 1);
        for &g in &grads {
            store.apply_push(WorkerId::new(0), &[g], 0.5);
        }
        let expected: f32 = -0.5 * grads.iter().sum::<f32>();
        prop_assert!((store.params()[0] - expected).abs() < 1e-3);
    }

    /// Snapshots are immutable: later pushes never alter an earlier pull.
    #[test]
    fn snapshots_are_isolated(pre in -1.0f32..1.0, post in -1.0f32..1.0) {
        let mut store = ParameterStore::new(vec![1.0, 2.0], 2);
        store.apply_push(WorkerId::new(0), &[pre, pre], 1.0);
        let snap = store.pull(WorkerId::new(1));
        let frozen = snap.params().to_vec();
        store.apply_push(WorkerId::new(0), &[post, post], 1.0);
        prop_assert_eq!(snap.params(), &frozen[..]);
    }

    /// Staleness is exactly the number of pushes since the last pull.
    #[test]
    fn staleness_is_exact(k in 0u64..20) {
        let mut store = ParameterStore::new(vec![0.0], 1);
        store.pull(WorkerId::new(0));
        for _ in 0..k {
            store.apply_push(WorkerId::new(1), &[0.1], 0.1);
        }
        prop_assert_eq!(store.staleness_of(WorkerId::new(0)), k);
    }

    /// Clipping never increases the applied step and preserves direction.
    #[test]
    fn clipping_shrinks_but_preserves_direction(gx in -10.0f32..10.0, gy in -10.0f32..10.0) {
        prop_assume!(gx.abs() > 1e-3 || gy.abs() > 1e-3);
        let mut clipped = ParameterStore::new(vec![0.0, 0.0], 1).with_grad_clip(0.5);
        let mut plain = ParameterStore::new(vec![0.0, 0.0], 1);
        clipped.apply_push(WorkerId::new(0), &[gx, gy], 1.0);
        plain.apply_push(WorkerId::new(0), &[gx, gy], 1.0);
        let cn = (clipped.params()[0].powi(2) + clipped.params()[1].powi(2)).sqrt();
        let pn = (plain.params()[0].powi(2) + plain.params()[1].powi(2)).sqrt();
        prop_assert!(cn <= pn + 1e-6);
        prop_assert!(cn <= 0.5 + 1e-4, "clipped step norm {cn} exceeds clip");
        // Same direction: cross product ~ 0 and dot >= 0.
        let cross = clipped.params()[0] * plain.params()[1] - clipped.params()[1] * plain.params()[0];
        prop_assert!(cross.abs() < 1e-3);
    }

    /// Shard layouts tile the parameter space for any valid (params,
    /// shards) request; oversharded requests are typed errors, never empty
    /// ranges.
    #[test]
    fn shard_layout_tiles(n in 1usize..10_000, s in 1usize..64) {
        match ShardLayout::try_new(n, s) {
            Ok(layout) => {
                prop_assert!(s <= n);
                let mut covered = 0;
                let mut prev_end = 0;
                for (_, (lo, hi)) in layout.iter() {
                    prop_assert_eq!(lo, prev_end);
                    prop_assert!(hi > lo);
                    covered += hi - lo;
                    prev_end = hi;
                }
                prop_assert_eq!(covered, n);
            }
            Err(e) => {
                prop_assert!(s > n);
                prop_assert_eq!(
                    e,
                    ShardLayoutError::MoreShardsThanParams { num_params: n, num_shards: s }
                );
            }
        }
    }

    /// Checkpoint codec round trip: snapshot → bytes → restore is the
    /// identity on every observable store behaviour, for arbitrary
    /// optimizer configurations and push histories.
    #[test]
    fn checkpoint_round_trip_is_identity(
        dim in 1usize..16,
        shards in 1usize..4,
        momentum in prop_oneof![Just(0.0f32), 0.2f32..0.95],
        clip in prop_oneof![Just(None), (0.1f32..5.0).prop_map(Some)],
        pushes in proptest::collection::vec((0usize..4, -1.0f32..1.0), 0..20),
        next in -1.0f32..1.0,
    ) {
        prop_assume!(shards <= dim);
        let mut store = ParameterStore::new(vec![0.25; dim], shards);
        if momentum > 0.0 {
            store = store.with_momentum(momentum);
        }
        if let Some(c) = clip {
            store = store.with_grad_clip(c);
        }
        for &(w, g) in &pushes {
            store.apply_push(WorkerId::new(w), &vec![g; dim], 0.1);
        }
        let ckpt = store.snapshot_for_checkpoint();
        let decoded = StoreCheckpoint::decode(&ckpt.encode());
        prop_assert_eq!(decoded.as_ref(), Ok(&ckpt));
        let mut restored = ParameterStore::restore(decoded.unwrap()).unwrap();
        // Observable equality now, and bit-identical behaviour after.
        prop_assert_eq!(restored.version(), store.version());
        store.apply_push(WorkerId::new(1), &vec![next; dim], 0.1);
        restored.apply_push(WorkerId::new(1), &vec![next; dim], 0.1);
        prop_assert_eq!(store.params(), restored.params());
        for w in 0..4 {
            prop_assert_eq!(store.pushes_by(WorkerId::new(w)), restored.pushes_by(WorkerId::new(w)));
            prop_assert_eq!(
                store.staleness_of(WorkerId::new(w)),
                restored.staleness_of(WorkerId::new(w))
            );
        }
    }

    /// Corrupting any single byte of an encoded checkpoint yields a typed
    /// error (or, for bits the codec never reads back into state, the
    /// original checkpoint) — never a panic, never silently wrong state.
    #[test]
    fn corrupted_checkpoints_are_typed_errors(
        dim in 1usize..8,
        pushes in proptest::collection::vec(-1.0f32..1.0, 0..8),
        pos_seed in 0usize..4096,
        flip in 1u16..256,
    ) {
        let flip = flip as u8;
        let mut store = ParameterStore::new(vec![0.5; dim], 1).with_momentum(0.9);
        for &g in &pushes {
            store.apply_push(WorkerId::new(0), &vec![g; dim], 0.1);
        }
        let ckpt = store.snapshot_for_checkpoint();
        let bytes = ckpt.encode();
        let mut bad = bytes.clone();
        let pos = pos_seed % bad.len();
        bad[pos] ^= flip;
        match StoreCheckpoint::decode(&bad) {
            Ok(decoded) => prop_assert_eq!(decoded, ckpt),
            Err(
                CheckpointError::BadMagic
                | CheckpointError::UnsupportedFormat(_)
                | CheckpointError::Truncated
                | CheckpointError::ChecksumMismatch { .. }
                | CheckpointError::Malformed(_),
            ) => {}
        }
    }
}
