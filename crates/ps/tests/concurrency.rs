//! Concurrency checking of the parameter-server hot path.
//!
//! The threaded runtime shares a [`ParameterStore`] across threads behind
//! `Arc<Mutex<_>>` — the store itself is `&mut self`, so every cross-thread
//! schedule serializes into *some* ordering of its API calls. That gives
//! two complementary checks:
//!
//! 1. **`loom::model` tests** replay the runtime's exact embedding (store
//!    behind a mutex, racing pusher/puller threads) under many schedules.
//!    The vendored loom is a stress runner; swapping in upstream loom makes
//!    the same tests exhaustive.
//! 2. **Exhaustive interleaving enumeration** at API-call granularity:
//!    because calls serialize at the mutex, enumerating every merge of the
//!    per-worker call sequences covers *all* observable schedules by
//!    construction — the coverage loom would prove, without a model
//!    checker. Each schedule is verified against an eagerly-updated shadow
//!    model, so the lazy-momentum sparse path is checked bit-for-bit
//!    against dense semantics in every ordering.

use std::sync::{Arc, Mutex};

use specsync_ps::ParameterStore;
use specsync_simnet::WorkerId;
use specsync_tensor::SparseGrad;

fn w(i: usize) -> WorkerId {
    WorkerId::new(i)
}

// ---------------------------------------------------------------------------
// loom model tests: the runtime's Arc<Mutex<ParameterStore>> embedding.
// ---------------------------------------------------------------------------

#[test]
fn pulled_snapshot_is_immune_to_concurrent_pushes() {
    loom::model(|| {
        let store = Arc::new(Mutex::new(ParameterStore::new(vec![1.0, 2.0], 1)));
        let snap = store.lock().expect("lock").pull(w(0));
        assert_eq!(snap.version(), 0);

        let pusher = {
            let store = Arc::clone(&store);
            loom::thread::spawn(move || {
                store
                    .lock()
                    .expect("lock")
                    .apply_push(w(1), &[1.0, 1.0], 0.5);
            })
        };
        // Read the shared buffer while the push races with us.
        assert_eq!(snap.params(), &[1.0, 2.0]);
        pusher.join().expect("pusher thread");
        // The push must build new state, never mutate a handed-out
        // snapshot in place.
        assert_eq!(snap.params(), &[1.0, 2.0]);

        let fresh = store.lock().expect("lock").pull(w(0));
        assert_eq!(fresh.version(), 1);
        assert_eq!(fresh.params(), &[0.5, 1.5]);
    });
}

#[test]
fn snapshot_version_matches_contents_under_racing_pushes() {
    loom::model(|| {
        let store = Arc::new(Mutex::new(ParameterStore::new(vec![1.0], 1)));
        let pushers: Vec<_> = (0..2)
            .map(|i| {
                let store = Arc::clone(&store);
                loom::thread::spawn(move || {
                    store.lock().expect("lock").apply_push(w(i), &[1.0], 0.25);
                })
            })
            .collect();

        // Whatever prefix of the pushes we observe, the snapshot's contents
        // must be exactly the value implied by its version: both pushes
        // subtract the same 0.25.
        let snap = store.lock().expect("lock").pull(w(2));
        assert!(snap.version() <= 2);
        let expected = 1.0 - 0.25 * snap.version() as f32;
        assert_eq!(snap.params(), &[expected]);

        for p in pushers {
            p.join().expect("pusher thread");
        }
        let settled = store.lock().expect("lock").pull(w(2));
        assert_eq!(settled.version(), 2);
        assert_eq!(settled.params(), &[0.5]);
    });
}

#[test]
fn concurrent_pulls_share_one_snapshot_allocation() {
    loom::model(|| {
        let store = Arc::new(Mutex::new(ParameterStore::new(vec![3.0, 4.0], 2)));
        let handles: Vec<_> = (0..2)
            .map(|i| {
                let store = Arc::clone(&store);
                loom::thread::spawn(move || store.lock().expect("lock").pull(w(i)).shared())
            })
            .collect();
        let mine = store.lock().expect("lock").pull(w(2)).shared();
        for h in handles {
            let theirs = h.join().expect("puller thread");
            // No push intervened, so every pull of version 0 must hand out
            // the same cached allocation (the zero-copy contract).
            assert!(Arc::ptr_eq(&mine, &theirs));
        }
    });
}

// ---------------------------------------------------------------------------
// Exhaustive interleaving enumeration.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq)]
enum Op {
    /// Dense push of `grad` scaled by the op's learning rate.
    DensePush { grad: [f32; 3], lr: f32 },
    /// Sparse push touching one coordinate (exercises lazy momentum).
    SparsePush { index: usize, value: f32, lr: f32 },
    /// Pull and record the snapshot for invariant checking.
    Pull,
}

/// Every merge of `a` and `b` that preserves each sequence's own order —
/// i.e. every schedule two mutex-serialized workers can produce.
fn interleavings(a: &[Op], b: &[Op]) -> Vec<Vec<(usize, Op)>> {
    fn go(a: &[Op], b: &[Op], prefix: &mut Vec<(usize, Op)>, out: &mut Vec<Vec<(usize, Op)>>) {
        match (a.first(), b.first()) {
            (None, None) => out.push(prefix.clone()),
            (first_a, first_b) => {
                if let Some(&op) = first_a {
                    prefix.push((0, op));
                    go(&a[1..], b, prefix, out);
                    prefix.pop();
                }
                if let Some(&op) = first_b {
                    prefix.push((1, op));
                    go(a, &b[1..], prefix, out);
                    prefix.pop();
                }
            }
        }
    }
    let mut out = Vec::new();
    go(a, b, &mut Vec::new(), &mut out);
    out
}

/// Eager shadow model: plain SGD-with-momentum replay where every push is
/// applied densely and immediately. The store's lazy sparse path promises
/// bit-identical results to this.
struct ShadowModel {
    params: Vec<f32>,
    velocity: Vec<f32>,
    beta: f32,
}

impl ShadowModel {
    fn new(initial: &[f32], beta: f32) -> Self {
        ShadowModel {
            velocity: vec![0.0; initial.len()],
            params: initial.to_vec(),
            beta,
        }
    }

    fn push_dense(&mut self, grad: &[f32], lr: f32) {
        for ((p, v), g) in self.params.iter_mut().zip(&mut self.velocity).zip(grad) {
            *v = self.beta * *v + g;
            *p -= lr * *v;
        }
    }
}

fn sparse(index: usize, value: f32, dim: usize) -> SparseGrad {
    let mut g = SparseGrad::new();
    g.reset(dim);
    g.add(index, value);
    g.finish();
    g
}

#[test]
fn every_interleaving_of_two_workers_preserves_store_invariants() {
    const DIM: usize = 3;
    const BETA: f32 = 0.9;
    let initial = [1.0f32, 2.0, -1.0];

    // Worker 0 mixes dense and sparse pushes; worker 1 pushes sparsely at a
    // different coordinate and with a different lr, forcing the lazy
    // momentum path through its materialize-on-lr-change branch.
    let worker0 = [
        Op::SparsePush {
            index: 0,
            value: 0.5,
            lr: 0.1,
        },
        Op::Pull,
        Op::DensePush {
            grad: [0.1, -0.2, 0.3],
            lr: 0.1,
        },
        Op::Pull,
    ];
    let worker1 = [
        Op::SparsePush {
            index: 2,
            value: -1.0,
            lr: 0.2,
        },
        Op::Pull,
        Op::SparsePush {
            index: 1,
            value: 0.25,
            lr: 0.2,
        },
        Op::Pull,
    ];

    let schedules = interleavings(&worker0, &worker1);
    // C(8, 4) merges of two 4-op sequences.
    assert_eq!(schedules.len(), 70);

    for schedule in schedules {
        let mut store = ParameterStore::new(initial.to_vec(), 2).with_momentum(BETA);
        let mut shadow = ShadowModel::new(&initial, BETA);
        let mut pushes_so_far = 0u64;
        // Snapshots captured along the way, with the contents they held at
        // capture time: handed-out buffers must never change afterwards.
        let mut captured = Vec::new();

        for (who, op) in &schedule {
            match *op {
                Op::DensePush { grad, lr } => {
                    let version = store.apply_push(w(*who), &grad, lr);
                    pushes_so_far += 1;
                    assert_eq!(version, pushes_so_far);
                    shadow.push_dense(&grad, lr);
                }
                Op::SparsePush { index, value, lr } => {
                    let g = sparse(index, value, DIM);
                    let version = store.apply_push_sparse(w(*who), &g, lr);
                    pushes_so_far += 1;
                    assert_eq!(version, pushes_so_far);
                    shadow.push_dense(&g.to_dense(), lr);
                }
                Op::Pull => {
                    let snap = store.pull(w(*who));
                    // Version counts exactly the pushes serialized before
                    // this pull.
                    assert_eq!(snap.version(), pushes_so_far);
                    // The lazy sparse/momentum path must be bit-identical
                    // to the eager dense replay, in every ordering.
                    for (a, b) in snap.params().iter().zip(&shadow.params) {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "lazy path diverged from dense semantics"
                        );
                    }
                    // Staleness resets at the moment of a pull.
                    assert_eq!(store.staleness_of(w(*who)), 0);
                    captured.push((snap.shared(), shadow.params.clone()));
                }
            }
        }

        // Immutability: no handed-out snapshot changed after later ops.
        for (buffer, at_capture) in &captured {
            assert_eq!(&buffer[..], &at_capture[..], "snapshot mutated in place");
        }
        // Zero-copy within a version, invalidation across versions:
        // consecutive captures share an allocation iff no push intervened,
        // which here means equal versions of adjacent pulls.
        for pair in captured.windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            if a.1 == b.1 {
                assert!(
                    Arc::ptr_eq(&a.0, &b.0),
                    "same-version pulls must share the cached snapshot"
                );
            } else {
                assert!(
                    !Arc::ptr_eq(&a.0, &b.0),
                    "a push must invalidate the snapshot cache"
                );
            }
        }
    }
}

#[test]
fn interleaving_enumerator_is_order_preserving_and_complete() {
    let a = [
        Op::Pull,
        Op::DensePush {
            grad: [0.0; 3],
            lr: 0.1,
        },
    ];
    let b = [Op::Pull];
    let all = interleavings(&a, &b);
    // C(3, 1) distinct merges.
    assert_eq!(all.len(), 3);
    for schedule in &all {
        let a_positions: Vec<usize> = schedule
            .iter()
            .enumerate()
            .filter(|(_, (who, _))| *who == 0)
            .map(|(i, _)| i)
            .collect();
        assert!(a_positions.windows(2).all(|p| p[0] < p[1]));
        assert_eq!(schedule.len(), 3);
    }
}
