//! # SpecSync
//!
//! A full Rust reproduction of **"Stay Fresh: Speculative Synchronization
//! for Fast Distributed Machine Learning"** (Zhang, Tian, Wang & Yan,
//! ICDCS 2018).
//!
//! In asynchronous parameter-server training, a worker only refreshes its
//! parameter replica when it pulls at the start of an iteration, so every
//! push made shortly afterwards is invisible until the next pull — the
//! *pushes-after-pull* staleness the paper identifies. SpecSync lets a
//! centralized scheduler watch all pushes and, when enough land inside a
//! speculation window `ABORT_TIME`, tell the worker to **abort** its
//! in-flight computation, re-pull fresh parameters, and start over. The
//! window and the trigger threshold `ABORT_RATE` are retuned every epoch by
//! the paper's Algorithm 1.
//!
//! This facade re-exports the whole stack:
//!
//! - [`core`] — the SpecSync scheduler, adaptive tuner, freshness
//!   estimators and PAP analysis (the paper's contribution);
//! - [`cluster`] — the virtual-time cluster harness that trains real models
//!   under simulated EC2 timing;
//! - [`ml`] — datasets, models and the three Table-I workloads;
//! - [`ps`] — the sharded asynchronous parameter server, with
//!   primary/backup replication, push journaling, and a crash-consistent
//!   checkpoint codec;
//! - [`net`] — the wire: a checksummed binary frame codec, the unified
//!   [`Transport`] API over the consolidated [`WireMessage`] vocabulary,
//!   and TCP servers that run the shards, scheduler and workers as
//!   separate OS processes;
//! - [`runtime`] — a real multi-threaded deployment of the same protocol;
//! - [`sync`] — ASP/BSP/SSP/naïve-waiting schemes;
//! - [`telemetry`] — typed protocol event traces and metrics sinks shared
//!   by the simulator and the threaded runtime;
//! - [`simnet`] — the deterministic discrete-event engine.
//!
//! # Quickstart
//!
//! ```
//! use specsync::{ClusterSpec, InstanceType, SchemeKind, Trainer, Workload};
//!
//! let cluster = ClusterSpec::homogeneous(4, InstanceType::M4Xlarge);
//! let baseline = Trainer::new(Workload::tiny_test(), SchemeKind::Asp)
//!     .cluster(cluster.clone())
//!     .seed(7)
//!     .run();
//! let specsync = Trainer::new(Workload::tiny_test(), SchemeKind::specsync_adaptive())
//!     .cluster(cluster)
//!     .seed(7)
//!     .run();
//! println!("ASP runtime {} vs SpecSync {}", baseline.runtime(), specsync.runtime());
//! ```

#![warn(missing_docs)]

pub use specsync_cluster as cluster;
pub use specsync_core as core;
pub use specsync_ml as ml;
pub use specsync_net as net;
pub use specsync_ps as ps;
pub use specsync_runtime as runtime;
pub use specsync_simnet as simnet;
pub use specsync_sync as sync;
pub use specsync_telemetry as telemetry;
pub use specsync_tensor as tensor;

pub use specsync_cluster::{
    ChaosStats, ClusterSpec, Driver, DriverConfig, InstanceType, LossPoint, RunReport, Trainer,
};
pub use specsync_core::{
    AdaptiveTuner, CherrypickGrid, Hyperparams, PapDistribution, PushHistory, Scheduler,
    SchedulerCheckpoint, SchedulerStats,
};
pub use specsync_ml::{LrSchedule, Model, Workload, WorkloadKind};
pub use specsync_net::{
    Endpoint, FailoverControl, InProcTransport, MessageSizes, NetConfig, NetError, SchedulerServer,
    ShardHost, ShardServer, TcpTransport, Transport, WireMessage,
};
pub use specsync_ps::{
    CheckpointError, ParamSnapshot, ParameterStore, PushJournal, ReplicaError, ReplicaRole,
    ReplicatedStore, StoreCheckpoint,
};
pub use specsync_runtime::{Backoff, RuntimeChaos, RuntimeConfig, RuntimeConfigBuilder};
pub use specsync_simnet::{
    CrashEvent, FaultPlan, LinkFaultProfile, MessageFate, ServerCrashEvent, SimDuration,
    StragglerWindow, VirtualTime, WorkerId,
};
pub use specsync_sync::{BaseScheme, SchemeKind, TuningMode};
pub use specsync_telemetry::{
    Event, EventSink, FaultKind, InMemorySink, JsonlSink, LossCurve, LossSample, MetricsSink,
    NullSink,
};
